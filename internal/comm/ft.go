// Fault-tolerant collectives: detection (per-receive timeouts with
// bounded retry/backoff, payload checksums, a heartbeat-learned liveness
// mask) and recovery (redundant multi-tree broadcast over the n
// edge-disjoint ERSBTs, degraded-mode scatter over a pruned/regrafted
// BST).
//
// The redundancy argument is the paper's own: the MSBT graph consists of
// n pairwise edge-disjoint spanning trees, so k < n dead links can sever
// at most k of the n trees above any node — replicating a broadcast down
// all n trees therefore tolerates any n-1 link failures. Corruption is
// detected by checksum and handled by the same mechanism: a damaged copy
// is discarded and another tree's copy is awaited (retry by redundancy,
// not retransmission).
package comm

import (
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/bst"
	"repro/internal/cube"
	"repro/internal/fault"
	"repro/internal/mpx"
	"repro/internal/msbt"
	"repro/internal/svc"
)

// FTOptions tunes failure detection in the fault-tolerant collectives.
type FTOptions struct {
	// Timeout is the initial per-receive wait; zero means 50ms.
	Timeout time.Duration
	// Retries bounds how many times a timed-out wait is retried with the
	// timeout doubled (exponential backoff); zero means 3.
	Retries int
	// Sweeps is the number of full dimension-exchange rounds a liveness
	// probe performs; zero means 2 (the second sweep forwards bits that
	// missed their one butterfly path through a dead region).
	Sweeps int
}

func (o FTOptions) withDefaults() FTOptions {
	if o.Timeout <= 0 {
		o.Timeout = 50 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 2
	}
	return o
}

// checksum is the end-to-end payload checksum carried in mpx.Part.Sum.
func checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// abandon marks tags as given up: queued messages are purged and late
// arrivals are dropped by the pump instead of lingering to be mistaken
// for stream corruption.
func (c *Comm) abandon(tags ...int) {
	c.mu.Lock()
	for _, tag := range tags {
		c.abandoned[tag] = true
		delete(c.mailbox, tag)
	}
	c.mu.Unlock()
}

// recvTagWait is recvTag with a deadline: ok == false reports a timeout
// (the message may still arrive later; abandon the tag if giving up).
func (c *Comm) recvTagWait(tag int, d time.Duration) (mpx.Envelope, bool, error) {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if q := c.mailbox[tag]; len(q) > 0 {
			env := q[0]
			if len(q) == 1 {
				delete(c.mailbox, tag)
			} else {
				c.mailbox[tag] = q[1:]
			}
			return env, true, nil
		}
		if err := c.staleLocked(tag); err != nil {
			return mpx.Envelope{}, false, err
		}
		if c.stopped {
			return mpx.Envelope{}, false, c.stoppedErr(fmt.Sprintf("tag %d", tag))
		}
		if !time.Now().Before(deadline) {
			return mpx.Envelope{}, false, nil
		}
		c.cond.Wait()
	}
}

// recvSeqAnyWait waits up to d for any message of the CURRENT collective
// sequence, regardless of subtag; ok == false reports a timeout.
func (c *Comm) recvSeqAnyWait(d time.Duration) (mpx.Envelope, bool, error) {
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for tag, q := range c.mailbox {
			if svc.JobKeyOf(tag) == c.key && svc.StreamSeq(tag) == c.seq && len(q) > 0 {
				env := q[0]
				if len(q) == 1 {
					delete(c.mailbox, tag)
				} else {
					c.mailbox[tag] = q[1:]
				}
				return env, true, nil
			}
		}
		if c.stopped {
			return mpx.Envelope{}, false, c.stoppedErr("fault-tolerant collective traffic")
		}
		if !time.Now().Before(deadline) {
			return mpx.Envelope{}, false, nil
		}
		c.cond.Wait()
	}
}

// ProbeLiveness learns a node-liveness mask by dimension-exchange
// heartbeats: every rank starts knowing only itself alive and, for each
// sweep and each dimension, swaps its current mask with the neighbor
// across that dimension (OR-merging what comes back). A dead neighbor or
// dead link simply times out, teaching nothing; bits of live nodes flow
// around faults on the other dimensions. The result is this rank's local
// belief — exact for dead nodes in a connected live subcube, conservative
// when faults partition knowledge.
func (c *Comm) ProbeLiveness(opt FTOptions) (fault.Liveness, error) {
	defer c.next()
	opt = opt.withDefaults()
	me := c.Rank()
	live := fault.NoneAlive(c.n)
	live.Set(me)
	var tags []int
	// Receive deadlines follow a global schedule — step k times out at
	// probe start + (k+1)*Timeout — so a rank stalled by a dead partner at
	// step k is still inside its live partners' step-k+1 window. Per-step
	// timeouts would cascade: the stalled rank's NEXT partner would time
	// out on it and falsely mark the whole branch dead.
	start := time.Now()
	step := 0
	for s := 0; s < opt.Sweeps; s++ {
		for d := 0; d < c.n; d++ {
			step++
			sub := s*c.n + d + 1
			tag := c.tagFor(sub)
			tags = append(tags, tag)
			c.nd.Send(d, mpx.Message{Tag: tag, Parts: []mpx.Part{{Dest: me, Data: live.Bytes()}}})
			wait := time.Until(start.Add(time.Duration(step) * opt.Timeout))
			if wait < opt.Timeout/2 {
				wait = opt.Timeout / 2 // behind schedule: keep a real window
			}
			env, ok, err := c.recvTagWait(tag, wait)
			if err != nil {
				return live, err
			}
			if !ok {
				continue // neighbor presumed dead (or link severed)
			}
			other, err := fault.LivenessFromBytes(c.n, env.Parts[0].Data)
			if err != nil {
				continue // damaged heartbeat: ignore, redundancy covers it
			}
			live.Merge(other)
		}
	}
	c.abandon(tags...)
	return live, nil
}

// BcastFT distributes data from root to every rank redundantly: the full
// checksummed payload travels down all n edge-disjoint ERSBTs, and each
// rank accepts the first arrival whose checksum verifies, forwarding
// every copy onward in its own tree. Any n-1 dead links — and any
// corruption pattern that leaves one tree clean — still deliver to every
// rank reachable in the live cube. Ranks keep forwarding until all n
// copies arrived or, once a valid copy is accepted, a receive timeout
// declares the missing trees severed.
func (c *Comm) BcastFT(root cube.NodeID, data []byte, opt FTOptions) ([]byte, error) {
	defer c.next()
	opt = opt.withDefaults()
	me := c.Rank()
	tags := make([]int, c.n)
	for j := range tags {
		tags[j] = c.tagFor(j + 1)
	}
	defer c.abandon(tags...)

	if me == root {
		sum := checksum(data)
		for j := 0; j < c.n; j++ {
			c.send(msbt.RootOf(j, root), j+1, []mpx.Part{{Dest: root, Data: data, Sum: sum}})
		}
		return data, nil
	}

	var accepted []byte
	seen := make([]bool, c.n)
	nseen := 0
	timeout := opt.Timeout
	retries := 0
	for nseen < c.n {
		env, ok, err := c.recvSeqAnyWait(timeout)
		if err != nil {
			return nil, err
		}
		if !ok {
			if accepted != nil {
				break // have a valid copy; missing trees are severed
			}
			if retries >= opt.Retries {
				return nil, fmt.Errorf("comm: node %d: bcastft: no valid copy of the broadcast arrived (%d timeouts, all trees severed or corrupt)", me, retries+1)
			}
			retries++
			timeout *= 2
			continue
		}
		j := svc.StreamSub(env.Tag) - 1
		if j < 0 || j >= c.n || seen[j] {
			continue // duplicate delivery or junk subtag: ignore
		}
		seen[j] = true
		nseen++
		pt := env.Parts[0]
		for _, ch := range msbt.Children(c.n, j, me, root) {
			c.send(ch, j+1, env.Parts)
		}
		if accepted == nil && checksum(pt.Data) == pt.Sum {
			accepted = pt.Data
		}
	}
	if accepted == nil {
		return nil, fmt.Errorf("comm: node %d: bcastft: all %d received copies were corrupt", me, nseen)
	}
	return accepted, nil
}

// ScatterFT is the degraded-mode personalized communication: given a
// shared liveness mask (from ProbeLiveness or the experiment plan), every
// rank deterministically computes the same pruned/regrafted BST of the
// live subcube (fault.Regraft) and the scatter runs over it. Live ranks
// cut off from the root — and, trivially, dead ranks — receive nothing;
// reachable ranks receive exactly their payload. Bundles carry checksums;
// a corrupted bundle is reported, not mis-delivered.
func (c *Comm) ScatterFT(root cube.NodeID, data [][]byte, live fault.Liveness, opt FTOptions) ([]byte, error) {
	defer c.next()
	opt = opt.withDefaults()
	me := c.Rank()
	ft, err := fault.Regraft(c.n, root, func(i cube.NodeID) (cube.NodeID, bool) {
		return bst.Parent(c.n, i, root)
	}, live, nil)
	if err != nil {
		return nil, err
	}
	if !ft.Contains(me) {
		return nil, nil // unreachable in the live subcube: no data can arrive
	}
	tag := c.tagFor(0)
	if me == root {
		if len(data) != c.Size() {
			return nil, fmt.Errorf("comm: scatterft needs %d payloads, got %d", c.Size(), len(data))
		}
		for _, ch := range ft.Children(me) {
			var parts []mpx.Part
			for _, d := range ft.Subtree(ch) {
				parts = append(parts, mpx.Part{Dest: d, Data: data[d], Sum: checksum(data[d])})
			}
			c.send(ch, 0, parts)
		}
		return data[me], nil
	}

	var env mpx.Envelope
	timeout := opt.Timeout
	for attempt := 0; ; attempt++ {
		var ok bool
		env, ok, err = c.recvTagWait(tag, timeout)
		if err != nil {
			return nil, err
		}
		if ok {
			break
		}
		if attempt >= opt.Retries {
			c.abandon(tag)
			return nil, fmt.Errorf("comm: node %d: scatterft: no bundle from parent within %d attempts", me, attempt+1)
		}
		timeout *= 2
	}
	var mine []byte
	found := false
	perChild := map[cube.NodeID][]mpx.Part{}
	childOf := map[cube.NodeID]cube.NodeID{}
	children := ft.Children(me)
	for _, ch := range children {
		for _, d := range ft.Subtree(ch) {
			childOf[d] = ch
		}
	}
	for _, pt := range env.Parts {
		if pt.Dest == me {
			if checksum(pt.Data) != pt.Sum {
				return nil, fmt.Errorf("comm: node %d: scatterft: payload corrupted in flight (checksum %#x, want %#x)", me, checksum(pt.Data), pt.Sum)
			}
			mine, found = pt.Data, true
			continue
		}
		ch, ok := childOf[pt.Dest]
		if !ok {
			return nil, fmt.Errorf("comm: scatterft part for %d outside %d's live subtree", pt.Dest, me)
		}
		perChild[ch] = append(perChild[ch], pt)
	}
	for _, ch := range children {
		if parts := perChild[ch]; len(parts) > 0 {
			c.send(ch, 0, parts)
		}
	}
	if !found {
		return nil, fmt.Errorf("comm: rank %d missing from scatterft bundle", me)
	}
	return mine, nil
}
