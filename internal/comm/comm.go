// Package comm is an MPI-style communicator for the Boolean-cube
// runtime: user code runs as one program per node and calls collective
// operations from inside, exactly as it would against a message-passing
// library on the iPSC. The collectives are the paper's: binomial-tree
// broadcast (SBT), multi-tree broadcast (MSBT), balanced-tree
// personalized communication (BST scatter/gather), plus tree reduction,
// dimension-exchange all-reduce, prefix scan, and all-gather/all-to-all
// over N concurrent balanced trees.
//
// Collective calls must be made by every node in the same order (the MPI
// rule); each call is sequence-stamped, and a mismatched message is
// reported as corruption rather than mis-delivered. Every node drains its
// inbox through a pump goroutine into an unbounded tag-matched mailbox, so
// a slow participant can never deadlock a fast neighbor.
//
// On machines with injected faults (RunFaulty), the fault-tolerant
// collectives in ft.go add detection and recovery: per-receive timeouts
// with bounded retry/backoff, a liveness mask learned from a heartbeat
// round, payload checksums, and the redundant multi-tree broadcast that
// exploits the edge-disjointness of the paper's ERSBTs.
package comm

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bst"
	"repro/internal/cube"
	"repro/internal/fault"
	"repro/internal/mpx"
	"repro/internal/msbt"
	"repro/internal/sbt"
	"repro/internal/svc"
	"repro/internal/transport"
)

// Comm is the per-node communicator handle.
type Comm struct {
	nd  *mpx.Node
	n   int
	seq int // collective sequence number; all nodes advance in lockstep

	// base is the encoded (tenant, job) half of every tag this
	// communicator sends (svc.Base); key is its svc.JobKey. Standalone
	// communicators (Run, RunTCP, ...) use base 0 — the legacy tag
	// space — while job-attached communicators carry their job's slice.
	base int
	key  int

	// source yields this communicator's envelope stream for the pump;
	// ok == false ends it. Standalone communicators read the node inbox
	// directly; job communicators read a per-job svc mailbox.
	source func() (mpx.Envelope, bool)

	// deadline, when nonzero, bounds every blocking receive inside the
	// plain collectives (see SetDeadline).
	deadline time.Duration

	// autotune enables model-driven packet sizing (see SetAutotune);
	// lastB is the previous choice (hysteresis anchor) and at the
	// counters. All three are touched only from the rank's own
	// goroutine, like seq.
	autotune bool
	lastB    int
	forceB   int // test hook: pin chooseB's answer
	at       AutotuneStats

	// routes caches, per tree root, this rank's BST child list and a
	// flat dest→child-slot table (see route). Touched only from the
	// rank's own goroutine, like seq.
	routes []*rootRoute

	// naiveAllNode disables the contention-aware multi-source schedule
	// for the all-node collectives (see SetAllNodeSchedule); the
	// zero value keeps scheduling ON. Touched only from the rank's own
	// goroutine, like seq.
	naiveAllNode bool

	// AllReduce's dimension-exchange send buffers, double-buffered by
	// call parity (arCalls&1). A sent buffer is held by reference by
	// in-flight envelopes (in-process delivery) and pending writev
	// queues (sockets), and a neighbor may lag a whole collective
	// behind, so same-call or next-call reuse would corrupt its unread
	// inbox. Two calls is provably enough distance: before call k+2
	// touches parity-k buffers, this rank has completed call k+1, which
	// required every neighbor to finish call k — consuming every
	// parity-k envelope this rank sent. arAcc is the private
	// accumulator seed per parity, never sent. Touched only from the
	// rank's own goroutine, like seq.
	arCalls int
	arBufs  [2][][]byte
	arAcc   [2][]byte

	mu        sync.Mutex
	cond      *sync.Cond
	mailbox   map[int][]mpx.Envelope // tag -> queued envelopes
	abandoned map[int]bool           // tags given up on by FT collectives
	stopped   bool

	// ready is a FIFO of mailbox tags with queued envelopes belonging to
	// the CURRENT collective sequence, one entry per envelope, in arrival
	// order. recvTagAnyRoot pops from its head — O(1) per wakeup instead
	// of rescanning the whole mailbox map in nondeterministic order. The
	// pump appends matching arrivals; next() reseeds it from the mailbox
	// for envelopes that arrived early (a neighbor running ahead).
	// Entries can go stale when another receive path drains the same tag;
	// the pop validates against the mailbox before trusting one.
	ready []int

	// interrupt, when non-nil, fails every blocking receive immediately —
	// the elastic runtime sets it (with a *member.ViewChangedError) when
	// the membership view advances under an epoch-pinned collective.
	// Guarded by mu.
	interrupt error
}

// newComm builds a communicator over nd whose tags live in the
// (tenant, job) slice encoded by base, fed by source (nil means read
// the node inbox directly), and starts its pump.
func newComm(nd *mpx.Node, n, base int, source func() (mpx.Envelope, bool)) *Comm {
	c := &Comm{
		nd: nd, n: n, base: base, key: svc.JobKeyOf(base),
		mailbox:   map[int][]mpx.Envelope{},
		abandoned: map[int]bool{},
	}
	c.cond = sync.NewCond(&c.mu)
	if source == nil {
		source = func() (mpx.Envelope, bool) { return nd.Recv(), true }
	}
	c.source = source
	go c.pump()
	return c
}

// DeadlineError reports a collective receive that outlived the deadline
// set with SetDeadline: the awaited peer is silent but no transport
// failure was recorded — a hang turned into a deterministic, named
// failure.
type DeadlineError struct {
	// Rank is the waiting node; Op names what it was waiting for.
	Rank cube.NodeID
	Op   string
	// Wait is the deadline that expired.
	Wait time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("comm: node %d: collective deadline (%v) expired waiting for %s", e.Rank, e.Wait, e.Op)
}

// SetDeadline bounds every blocking receive inside the plain
// collectives (Bcast, Scatter, Gather, Barrier, ...): a rank stuck on a
// silent — not severed, just silent — peer fails with a *DeadlineError
// after d instead of blocking forever. Zero restores the default
// (block indefinitely; transport failures still abort). Set it between
// collectives, not concurrently with one; it does not apply to the
// fault-tolerant collectives, which take explicit FTOptions timeouts.
func (c *Comm) SetDeadline(d time.Duration) { c.deadline = d }

// Rank returns this node's address.
func (c *Comm) Rank() cube.NodeID { return c.nd.ID }

// Dim returns the cube dimension.
func (c *Comm) Dim() int { return c.n }

// Size returns the number of nodes.
func (c *Comm) Size() int { return 1 << uint(c.n) }

// Run executes program on every node of an n-cube and waits for all
// programs to finish, returning the first error. Inbox pump goroutines
// are released when the machine shuts down.
func Run(n int, program func(c *Comm) error) error {
	return RunFaulty(n, nil, program)
}

// RunFaulty is Run on a machine with injected faults: dead ranks never
// run their program, and messages suffer whatever the injector decides.
// Programs should use the fault-tolerant collectives (BcastFT, ScatterFT,
// ProbeLiveness) — the plain collectives assume full participation and
// will abort when a needed peer is dead. A nil injector is exactly Run.
func RunFaulty(n int, inj fault.Injector, program func(c *Comm) error) error {
	// Comm's collectives bundle a whole subtree (up to N/2 destinations)
	// into each message, so DepthForScatter with that bundling bounds the
	// in-flight count; the per-node pump drains inboxes continuously, so
	// depth is throughput headroom, not a deadlock concern.
	return RunOn(mpx.NewWithInjector(n, CollectiveDepth(n), inj), program)
}

// CollectiveDepth is the inbox depth Comm's collectives assume: scatter
// bundles a whole subtree (up to N/2 destinations) into each message.
// Machines built elsewhere (e.g. over TCP transports) should size their
// inboxes with it before handing them to RunOn.
func CollectiveDepth(n int) int {
	return mpx.DepthForScatter(n, 1<<uint(n)/2)
}

// RunOn executes program wrapped in a communicator on every node hosted
// by m's transport, then shuts the machine down. A single-process cube
// is one RunOn over an in-process machine (what Run does); a cube spread
// over several OS processes is one RunOn per process, each over a
// machine built on a connected TCP transport (internal/transport).
func RunOn(m *mpx.Machine, program func(c *Comm) error) error {
	n := m.Cube().Dim()
	defer m.Shutdown() // release pumps still blocked in Recv
	return m.Run(func(nd *mpx.Node) error {
		c := newComm(nd, n, 0, nil)
		defer c.stop()
		err := program(c)
		if err != nil {
			// MPI semantics: an erroring rank aborts the job, releasing
			// ranks blocked in collectives instead of deadlocking them.
			m.Shutdown()
		}
		return err
	})
}

// TCPRunOptions tunes RunTCPWith beyond the plain RunTCP defaults.
type TCPRunOptions struct {
	// Resilience configures self-healing links on every endpoint.
	Resilience transport.ResilienceOptions
	// Chaos, when non-nil, starts one chaos agent per endpoint (seeded
	// Seed, Seed+1, ...) after the mesh connects and stops them when the
	// run ends.
	Chaos *transport.ChaosOptions
	// Deadline, when nonzero, is set on every rank's communicator
	// (Comm.SetDeadline) before the program runs.
	Deadline time.Duration
	// WireVersion caps the wire protocol version on every endpoint
	// (0 means the newest the transport speaks); see
	// transport.TCPOptions.WireVersion.
	WireVersion int
	// BatchHold, when positive, lets each endpoint hold small frames
	// briefly so concurrent jobs' parts share wire-v2 batch frames; see
	// transport.TCPOptions.BatchHold.
	BatchHold time.Duration
	// StatsSink, when non-nil, receives the transport counters summed
	// across all endpoints after the run finishes — the delivered-payload
	// numbers benchmarks derive goodput from.
	StatsSink func(mpx.TransportStats)
	// Network picks the socket family for every endpoint: "tcp"
	// (default, loopback) or "unix" (Unix-domain sockets; see
	// transport.NewUDS).
	Network string
	// Stripes, when > 1, opens that many parallel connections per link
	// and stripes bulk sends across them; see transport.TCPOptions.Stripes.
	Stripes int
	// Autotune enables model-driven packet sizing on every rank's
	// communicator (Comm.SetAutotune) before the program runs.
	Autotune bool
	// NaiveAllNode disables the contention-aware multi-source schedule
	// on every rank (Comm.SetAllNodeSchedule(false)) — the free-for-all
	// A/B baseline for the all-node collectives.
	NaiveAllNode bool
}

// RunTCP is Run with every cube link carried over a loopback TCP
// socket: one transport endpoint per node, connected into a full cube
// mesh, one machine per endpoint — the single-process twin of a
// multi-process `hypercomm launch` deployment. Collective programs run
// unchanged; only the transport underneath differs.
func RunTCP(n int, program func(c *Comm) error) error {
	return RunTCPWith(n, TCPRunOptions{}, program)
}

// RunUDS is RunTCP with every cube link carried over a Unix-domain
// socket instead of loopback TCP: the same wire protocol and framing,
// minus the TCP/IP stack — the transport `hypercomm serve` picks
// automatically for same-host deployments.
func RunUDS(n int, program func(c *Comm) error) error {
	return RunTCPWith(n, TCPRunOptions{Network: "unix"}, program)
}

// RunUDSWith is RunTCPWith over Unix-domain sockets.
func RunUDSWith(n int, opt TCPRunOptions, program func(c *Comm) error) error {
	opt.Network = "unix"
	return RunTCPWith(n, opt, program)
}

// RunTCPWith is RunTCP with self-healing links, chaos injection and
// per-collective deadlines available — the in-process harness the
// robustness tests drive.
func RunTCPWith(n int, opt TCPRunOptions, program func(c *Comm) error) error {
	size := 1 << uint(n)
	depth := CollectiveDepth(n)
	trs := make([]*transport.TCP, size)
	peers := make([]string, size)
	defer func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	}()
	for i := range trs {
		tr, err := transport.NewTCP(transport.TCPOptions{
			Dim: n, Locals: []cube.NodeID{cube.NodeID(i)}, Depth: depth,
			Resilience: opt.Resilience, WireVersion: opt.WireVersion,
			Network: opt.Network, Stripes: opt.Stripes, BatchHold: opt.BatchHold,
		})
		if err != nil {
			return err
		}
		trs[i] = tr
		peers[i] = tr.Addr()
	}
	var wg sync.WaitGroup
	connErrs := make([]error, size)
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *transport.TCP) {
			defer wg.Done()
			connErrs[i] = tr.Connect(peers)
		}(i, tr)
	}
	wg.Wait()
	for _, err := range connErrs {
		if err != nil {
			return err
		}
	}
	var agents []*transport.Chaos
	if opt.Chaos != nil {
		for i, tr := range trs {
			co := *opt.Chaos
			co.Seed += int64(i)
			agents = append(agents, tr.StartChaos(co))
		}
	}
	run := program
	if opt.Deadline > 0 || opt.Autotune || opt.NaiveAllNode {
		run = func(c *Comm) error {
			if opt.Deadline > 0 {
				c.SetDeadline(opt.Deadline)
			}
			c.SetAutotune(opt.Autotune)
			c.SetAllNodeSchedule(!opt.NaiveAllNode)
			return program(c)
		}
	}
	errs := make(chan error, size)
	for _, tr := range trs {
		go func(tr *transport.TCP) {
			errs <- RunOn(mpx.NewWithTransport(tr, nil), run)
		}(tr)
	}
	var first error
	for i := 0; i < size; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
			// Abort the job: shut every endpoint down so ranks blocked
			// in collectives unblock instead of deadlocking the run.
			for _, tr := range trs {
				tr.Close()
			}
		}
	}
	for _, a := range agents {
		a.Stop()
	}
	if opt.StatsSink != nil {
		var sum mpx.TransportStats
		for _, tr := range trs {
			sum.Add(tr.Stats())
		}
		opt.StatsSink(sum)
	}
	return first
}

// pump moves inbox messages into the tag-matched mailbox until stopped.
func (c *Comm) pump() (err error) {
	defer func() {
		if r := recover(); r != nil {
			// The machine shut down (a peer finished or panicked) while
			// we were blocked in Recv; that is a normal exit for the pump.
			err = nil
		}
		c.mu.Lock()
		c.stopped = true
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	for {
		env, ok := c.source()
		if !ok {
			return nil
		}
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			return nil
		}
		if c.abandoned[env.Tag] {
			// A fault-tolerant collective gave up on this tag (severed
			// tree, timed-out heartbeat): the straggler is dropped here so
			// it can never be mistaken for corruption of a later
			// collective.
			c.mu.Unlock()
			continue
		}
		c.mailbox[env.Tag] = append(c.mailbox[env.Tag], env)
		if svc.JobKeyOf(env.Tag) == c.key && svc.StreamSeq(env.Tag) == c.seq {
			c.ready = append(c.ready, env.Tag)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (c *Comm) stop() {
	c.mu.Lock()
	c.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// recvTag blocks until a message with the given tag is available. A
// queued message carrying the same subtag but a PAST collective sequence
// is a corrupted collective stream (some rank is running collectives out
// of order) and fails hard with full provenance: sender rank, raw tag,
// and expected vs. actual sequence. Future-sequence messages are normal —
// a neighbor may legitimately run ahead — and stragglers from abandoned
// fault-tolerant collectives never reach the mailbox (see pump).
func (c *Comm) recvTag(tag int) (mpx.Envelope, error) {
	if d := c.deadline; d > 0 {
		env, ok, err := c.recvTagWait(tag, d)
		if err != nil {
			return env, err
		}
		if !ok {
			return env, c.deadlineErr(fmt.Sprintf("tag %d", tag), d)
		}
		return env, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if q := c.mailbox[tag]; len(q) > 0 {
			env := q[0]
			if len(q) == 1 {
				delete(c.mailbox, tag)
			} else {
				c.mailbox[tag] = q[1:]
			}
			return env, nil
		}
		if err := c.staleLocked(tag); err != nil {
			return mpx.Envelope{}, err
		}
		if err := c.interrupt; err != nil {
			// The view changed under an epoch-pinned collective: fail now
			// rather than block on peers that have moved to a new epoch.
			return mpx.Envelope{}, err
		}
		if c.stopped {
			return mpx.Envelope{}, c.stoppedErr(fmt.Sprintf("tag %d", tag))
		}
		c.cond.Wait()
	}
}

// deadlineErr explains an expired collective deadline. A connection
// loss anywhere on the machine is the better diagnosis — it names the
// dead peer — so it takes precedence over the bare timeout.
func (c *Comm) deadlineErr(waitingFor string, d time.Duration) error {
	if perr := c.nd.AnyPeerError(); perr != nil {
		return fmt.Errorf("comm: node %d: deadline (%v) expired waiting for %s after a connection loss: %w",
			c.nd.ID, d, waitingFor, perr)
	}
	return &DeadlineError{Rank: c.nd.ID, Op: waitingFor, Wait: d}
}

// stoppedErr explains why the machine stopped underneath a blocked
// receive. A transport-level connection failure — a crashed peer
// process, a severed socket — is surfaced as such, wrapping the
// *mpx.PeerError that names the dead neighbor; that is a different
// diagnosis from a collective sequence mismatch (see staleLocked) and
// from an ordinary shutdown caused by some rank erroring out. The scan
// is machine-wide (AnyPeerError), not just this rank's own links:
// every rank stalled as collateral of one dead link gets an error that
// errors.As can unwrap to the *mpx.PeerError, not a bare shutdown.
func (c *Comm) stoppedErr(waitingFor string) error {
	perr := c.nd.PeerError()
	if perr == nil {
		perr = c.nd.AnyPeerError()
	}
	if perr != nil {
		return fmt.Errorf("comm: node %d: connection lost while waiting for %s: %w", c.nd.ID, waitingFor, perr)
	}
	return fmt.Errorf("comm: node %d: machine stopped while waiting for %s", c.nd.ID, waitingFor)
}

// staleLocked scans the mailbox (mu held) for a message whose subtag
// matches tag but whose collective sequence is in the past — corruption
// of the lockstep collective stream. The error carries everything a fault
// experiment needs to debug it.
func (c *Comm) staleLocked(tag int) error {
	sub, seq := svc.StreamSub(tag), svc.StreamSeq(tag)
	for k, q := range c.mailbox {
		if len(q) > 0 && svc.JobKeyOf(k) == c.key && svc.StreamSub(k) == sub && svc.StreamSeq(k) < seq {
			env := q[0]
			return fmt.Errorf("comm: node %d: corrupt collective stream: message from rank %d with tag %#x (subtag %d) carries sequence %d, expected sequence %d",
				c.nd.ID, env.From, k, sub, svc.StreamSeq(k), seq)
		}
	}
	return nil
}

// tagFor builds this collective's message tag for subtag sub: the
// communicator's (tenant, job) base ORed with the svc codec's
// (sequence, subtag) stream half. Subtags are small (tree index,
// dimension, or rank+1); svc.MaxSub of headroom is ample.
func (c *Comm) tagFor(sub int) int { return c.base | svc.StreamTag(c.seq, sub) }

// next advances the collective sequence (call exactly once per collective,
// on every node). The bump happens under the mailbox lock — the pump
// compares arrival tags against seq — and reseeds the ready queue with
// envelopes of the new sequence that arrived early.
func (c *Comm) next() {
	c.mu.Lock()
	c.seq++
	c.reseedLocked()
	c.mu.Unlock()
}

// reseedLocked rebuilds the ready queue for the current sequence from
// the mailbox: one scan per collective, so the per-wakeup receive path
// stays O(1). Early arrivals lose their exact arrival order here (the
// map does not remember it); everything arriving after this point is
// appended by the pump in true order.
func (c *Comm) reseedLocked() {
	c.ready = c.ready[:0]
	for tag, q := range c.mailbox {
		if svc.JobKeyOf(tag) == c.key && svc.StreamSeq(tag) == c.seq {
			for range q {
				c.ready = append(c.ready, tag)
			}
		}
	}
}

// send wraps SendTo with the current collective's tag.
func (c *Comm) send(to cube.NodeID, sub int, parts []mpx.Part) {
	c.nd.SendTo(to, mpx.Message{Tag: c.tagFor(sub), Parts: parts})
}

// Bcast distributes data from root to every node along the spanning
// binomial tree; every rank returns the payload (the root passes its own
// data, other ranks pass nil).
func (c *Comm) Bcast(root cube.NodeID, data []byte) ([]byte, error) {
	defer c.next()
	if c.Rank() != root {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		data = env.Parts[0].Data
	}
	for _, ch := range sbt.Children(c.n, c.Rank(), root) {
		c.send(ch, 0, []mpx.Part{{Dest: root, Data: data}})
	}
	return data, nil
}

// BcastMSBT distributes data from root down the n edge-disjoint ERSBTs
// (chunk j through tree j), reassembling at every rank.
//
// With autotuning enabled (SetAutotune) and a settled transport
// profile, the root splits each tree's segment into packets of at most
// the live B_opt and announces the count with a manifest — a
// zero-length part whose Offset is the negated packet count, riding
// ahead of the first packet in the same message, with the remaining
// packets following as separate messages. Non-root ranks detect the
// manifest and forward
// every message down the tree as it arrives, so packet k+1 overlaps
// packet k's next hop: the store-and-forward pipelining the paper's
// multi-packet MSBT analysis models. Receivers handle both framings
// regardless of their own autotune setting; a legacy single-message
// tree and an adaptive one differ only in what the root chose to send.
func (c *Comm) BcastMSBT(root cube.NodeID, data []byte) ([]byte, error) {
	defer c.next()
	if c.Rank() == root {
		bounds := chunkBounds(len(data), c.n)
		B := c.chooseB(len(data))
		for j := 0; j < c.n; j++ {
			seg := data[bounds[j]:bounds[j+1]]
			tr := msbt.RootOf(j, root)
			if B <= 0 || len(seg) <= B {
				c.send(tr, j+1, []mpx.Part{{Dest: root, Offset: bounds[j], Data: seg}})
				continue
			}
			q := (len(seg) + B - 1) / B
			// The manifest part rides in the first packet's message, so
			// adaptive framing costs q messages per tree, not q+1.
			c.send(tr, j+1, []mpx.Part{
				{Dest: root, Offset: -q},
				{Dest: root, Offset: bounds[j], Data: seg[:B]},
			})
			for k := 1; k < q; k++ {
				lo := k * B
				hi := lo + B
				if hi > len(seg) {
					hi = len(seg)
				}
				c.send(tr, j+1, []mpx.Part{{Dest: root, Offset: bounds[j] + lo, Data: seg[lo:hi]}})
			}
		}
		return data, nil
	}
	// Length is unknown off-root; collect every tree's packets first.
	type chunk struct {
		off  int
		data []byte
	}
	var chunks []chunk
	total := 0
	for j := 0; j < c.n; j++ {
		recvChunk := func() (mpx.Envelope, error) {
			env, err := c.recvTag(c.tagFor(j + 1))
			if err != nil {
				return env, err
			}
			if p, ok := msbt.Parent(c.n, j, c.Rank(), root); !ok || env.From != p {
				return env, fmt.Errorf("comm: bcastmsbt chunk %d from %d, want tree parent", j, env.From)
			}
			for _, ch := range msbt.Children(c.n, j, c.Rank(), root) {
				c.send(ch, j+1, env.Parts)
			}
			return env, nil
		}
		env, err := recvChunk()
		if err != nil {
			return nil, err
		}
		pt := env.Parts[0]
		if len(pt.Data) == 0 && pt.Offset < 0 {
			// Adaptive framing: the manifest names the packet count, and
			// any parts after it (the first packet rides with the
			// manifest) already count toward it.
			got := 0
			for _, p := range env.Parts[1:] {
				chunks = append(chunks, chunk{p.Offset, p.Data})
				total += len(p.Data)
				got++
			}
			for got < -pt.Offset {
				penv, err := recvChunk()
				if err != nil {
					return nil, err
				}
				for _, p := range penv.Parts {
					chunks = append(chunks, chunk{p.Offset, p.Data})
					total += len(p.Data)
					got++
				}
			}
			continue
		}
		chunks = append(chunks, chunk{pt.Offset, pt.Data})
		total += len(pt.Data)
	}
	out := make([]byte, total)
	for _, ck := range chunks {
		copy(out[ck.off:], ck.data)
	}
	return out, nil
}

// chunkBounds splits length l into n nearly equal contiguous chunks.
func chunkBounds(l, n int) []int {
	out := make([]int, n+1)
	for j := 0; j <= n; j++ {
		out[j] = j * l / n
	}
	return out
}

// Scatter delivers data[i] from root to rank i along the balanced
// spanning tree (the paper's personalized communication). Only the root's
// data argument is consulted; every rank returns its own payload.
func (c *Comm) Scatter(root cube.NodeID, data [][]byte) ([]byte, error) {
	defer c.next()
	me := c.Rank()
	if me == root {
		if len(data) != c.Size() {
			return nil, fmt.Errorf("comm: scatter needs %d payloads, got %d", c.Size(), len(data))
		}
		for _, ch := range bst.Children(c.n, me, root) {
			var parts []mpx.Part
			for _, d := range subtreeBST(c.n, ch, root) {
				parts = append(parts, mpx.Part{Dest: d, Data: data[d]})
			}
			c.send(ch, 0, parts)
		}
		return data[me], nil
	}
	env, err := c.recvTag(c.tagFor(0))
	if err != nil {
		return nil, err
	}
	mine, found, err := c.routeParts(c.route(root), env.Parts, 0, "scatter")
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("comm: rank %d missing from scatter bundle", me)
	}
	return mine, nil
}

// subtreeBST enumerates the BST subtree below node v (inclusive) in
// depth-first order, computed locally.
func subtreeBST(n int, v, root cube.NodeID) []cube.NodeID {
	out := []cube.NodeID{v}
	for _, ch := range bst.Children(n, v, root) {
		out = append(out, subtreeBST(n, ch, root)...)
	}
	return out
}

// rootRoute is this rank's routing state in the BST rooted at one rank:
// the child list and, for every destination, which child subtree it
// lives under (-1: not routed through this rank). counts is reusable
// scratch for bucketing one envelope's parts by child.
type rootRoute struct {
	children []cube.NodeID
	slot     []int16
	// starts/ends are per-child bucket bounds, scratch reused across
	// envelopes (the part buffer itself is not reused — it escapes into
	// sends that in-process transports hold by reference).
	starts, ends []int
}

// route returns the (lazily built, per-communicator) routing table for
// the BST rooted at r, backed by the process-wide canonical tree cache.
// The all-node collectives consult it once per envelope instead of
// rebuilding childOf/perChild maps N−1 times per call.
func (c *Comm) route(r cube.NodeID) *rootRoute {
	if c.routes == nil {
		c.routes = make([]*rootRoute, c.Size())
	}
	if rt := c.routes[r]; rt != nil {
		return rt
	}
	tr := bst.Cached(c.n, r)
	me := c.Rank()
	rt := &rootRoute{
		children: tr.Children(me),
		slot:     make([]int16, c.Size()),
	}
	for i := range rt.slot {
		rt.slot[i] = -1
	}
	for ci, ch := range rt.children {
		for _, d := range tr.SubtreeNodes(ch) {
			rt.slot[d] = int16(ci)
		}
	}
	rt.starts = make([]int, len(rt.children))
	rt.ends = make([]int, len(rt.children))
	c.routes[r] = rt
	return rt
}

// routeParts buckets one envelope's parts by the child subtree each
// destination lives under and forwards every non-empty bucket, returning
// this rank's own payload (nil, false when absent). One backing slice is
// allocated per envelope — it escapes into the sends, which may hold it
// by reference on in-process transports — and parts outside the tree
// report an error via the op name.
func (c *Comm) routeParts(rt *rootRoute, parts []mpx.Part, sub int, op string) ([]byte, bool, error) {
	me := c.Rank()
	var mine []byte
	found := false
	// Pass 1: count each child's bucket.
	for i := range rt.ends {
		rt.ends[i] = 0
	}
	forward := 0
	for _, pt := range parts {
		if pt.Dest == me {
			continue
		}
		s := rt.slot[pt.Dest]
		if s < 0 {
			return nil, false, fmt.Errorf("comm: %s part for %d outside %d's subtree", op, pt.Dest, me)
		}
		rt.ends[s]++
		forward++
	}
	// Prefix-sum into bucket bounds, then pass 2: place parts.
	buf := make([]mpx.Part, forward)
	off := 0
	for i, n := range rt.ends {
		rt.starts[i] = off
		off += n
		rt.ends[i] = rt.starts[i]
	}
	for _, pt := range parts {
		if pt.Dest == me {
			mine, found = pt.Data, true
			continue
		}
		s := rt.slot[pt.Dest]
		buf[rt.ends[s]] = pt
		rt.ends[s]++
	}
	for i, ch := range rt.children {
		if seg := buf[rt.starts[i]:rt.ends[i]]; len(seg) > 0 {
			c.send(ch, sub, seg)
		}
	}
	return mine, found, nil
}

// Gather collects every rank's payload at root along the balanced
// spanning tree; the root returns all payloads indexed by rank, others
// return nil.
func (c *Comm) Gather(root cube.NodeID, mine []byte) ([][]byte, error) {
	defer c.next()
	me := c.Rank()
	parts := []mpx.Part{{Dest: me, Data: mine}}
	for range bst.Children(c.n, me, root) {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		parts = append(parts, env.Parts...)
	}
	if p, ok := bst.Parent(c.n, me, root); ok {
		c.send(p, 0, parts)
		return nil, nil
	}
	out := make([][]byte, c.Size())
	for _, pt := range parts {
		out[pt.Dest] = pt.Data
	}
	return out, nil
}

// Reduce folds every rank's contribution to the root along the spanning
// binomial tree with the associative op; the root returns the result,
// others return nil.
func (c *Comm) Reduce(root cube.NodeID, mine []byte, op func(a, b []byte) []byte) ([]byte, error) {
	defer c.next()
	me := c.Rank()
	acc := append([]byte(nil), mine...)
	for range sbt.Children(c.n, me, root) {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		acc = op(acc, env.Parts[0].Data)
	}
	if p, ok := sbt.Parent(c.n, me, root); ok {
		c.send(p, 0, []mpx.Part{{Dest: root, Data: acc}})
		return nil, nil
	}
	return acc, nil
}

// AllReduce folds every rank's contribution and returns the result on
// every rank, by dimension exchange in log N full-duplex steps. op must
// be associative and commutative.
//
// The exchange is inherently link-conflict-free — step d uses every
// directed dim-d link exactly once, so all 2^d "sources" already run
// disjoint and the multi-source schedule has nothing to reorder. Its
// hot-path cost was allocation instead: the send must not alias the
// accumulator (in-process envelopes and socket writev queues hold sent
// buffers by reference, and op mutates its first argument), and the old
// code paid a fresh payload-sized snapshot per step. The snapshots now
// come from the communicator's parity-alternating buffer sets (see the
// arBufs field), so a warm call's dimension loop allocates no payload
// buffers at all — only the returned result is fresh.
func (c *Comm) AllReduce(mine []byte, op func(a, b []byte) []byte) ([]byte, error) {
	defer c.next()
	parity := c.arCalls & 1
	c.arCalls++
	set := c.arBufs[parity]
	if len(set) < c.n {
		set = make([][]byte, c.n)
		c.arBufs[parity] = set
	}
	acc := append(c.arAcc[parity][:0], mine...)
	c.arAcc[parity] = acc // keep grown capacity even if op rebinds acc
	for d := 0; d < c.n; d++ {
		snap := append(set[d][:0], acc...)
		set[d] = snap
		c.nd.Send(d, mpx.Message{Tag: c.tagFor(d), Parts: []mpx.Part{{Dest: c.Rank(), Data: snap}}})
		env, err := c.recvTag(c.tagFor(d))
		if err != nil {
			return nil, err
		}
		acc = op(acc, env.Parts[0].Data)
	}
	// The result must outlive the pooled buffers: acc usually IS
	// arAcc[parity] (op folding in place), which call k+2 will overwrite.
	return append([]byte(nil), acc...), nil
}

// Scan returns the inclusive prefix combine(x_0, ..., x_rank) on every
// rank. op must be associative (need not be commutative).
func (c *Comm) Scan(mine []byte, op func(a, b []byte) []byte) ([]byte, error) {
	defer c.next()
	prefix := append([]byte(nil), mine...)
	total := append([]byte(nil), mine...)
	for d := 0; d < c.n; d++ {
		snap := append([]byte(nil), total...)
		c.nd.Send(d, mpx.Message{Tag: c.tagFor(d), Parts: []mpx.Part{{Dest: c.Rank(), Data: snap}}})
		env, err := c.recvTag(c.tagFor(d))
		if err != nil {
			return nil, err
		}
		other := env.Parts[0].Data
		if c.Rank()&(1<<uint(d)) != 0 {
			prefix = op(append([]byte(nil), other...), prefix)
			total = op(append([]byte(nil), other...), total)
		} else {
			total = op(total, other)
		}
	}
	return prefix, nil
}

// Barrier blocks until every rank has entered it (an AllReduce of empty
// payloads).
func (c *Comm) Barrier() error {
	_, err := c.AllReduce([]byte{}, func(a, b []byte) []byte { return a })
	return err
}

// AllGather returns every rank's payload on every rank, running N
// concurrent balanced-spanning-tree broadcasts (one rooted at each rank).
// By default the N trees' sends follow the contention-aware multi-source
// schedule (see multisched.go); SetAllNodeSchedule(false) restores the
// naive forward-on-arrival launch below. Both orders send the same tree
// edges with the same tags, so mixed meshes interoperate byte-exactly.
func (c *Comm) AllGather(mine []byte) ([][]byte, error) {
	if !c.naiveAllNode {
		return c.allGatherScheduled(mine)
	}
	defer c.next()
	me := c.Rank()
	out := make([][]byte, c.Size())
	out[me] = mine
	for _, ch := range bst.Children(c.n, me, me) {
		c.send(ch, int(me)+1, []mpx.Part{{Dest: me, Data: mine}})
	}
	for seen := 0; seen < c.Size()-1; seen++ {
		env, err := c.recvTagAnyRoot()
		if err != nil {
			return nil, err
		}
		r := cube.NodeID(svc.StreamSub(env.Tag) - 1)
		if out[r] != nil {
			return nil, fmt.Errorf("comm: duplicate allgather payload from %d", r)
		}
		out[r] = env.Parts[0].Data
		for _, ch := range c.route(r).children {
			c.send(ch, int(r)+1, env.Parts)
		}
	}
	return out, nil
}

// recvTagAnyRoot receives the next message belonging to the CURRENT
// collective sequence regardless of subtag — used by the all-node
// collectives, whose messages arrive from all N trees in any order.
func (c *Comm) recvTagAnyRoot() (mpx.Envelope, error) {
	if d := c.deadline; d > 0 {
		env, ok, err := c.recvSeqAnyWait(d)
		if err != nil {
			return env, err
		}
		if !ok {
			return env, c.deadlineErr("all-node collective traffic", d)
		}
		return env, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for len(c.ready) > 0 {
			tag := c.ready[0]
			c.ready = c.ready[1:]
			// Validate: another receive path (an FT collective's scan, a
			// recvTag on the same tag) may have drained this entry already.
			q := c.mailbox[tag]
			if len(q) == 0 || svc.StreamSeq(tag) != c.seq {
				continue
			}
			env := q[0]
			if len(q) == 1 {
				delete(c.mailbox, tag)
			} else {
				c.mailbox[tag] = q[1:]
			}
			return env, nil
		}
		if err := c.interrupt; err != nil {
			return mpx.Envelope{}, err
		}
		if c.stopped {
			return mpx.Envelope{}, c.stoppedErr("all-node collective traffic")
		}
		c.cond.Wait()
	}
}

// AllToAll delivers mine[d] to rank d for every pair, over N concurrent
// balanced-tree scatters. Returns got[r] = payload received from rank r.
// Like AllGather, the default send order is the conflict-free
// multi-source schedule; SetAllNodeSchedule(false) restores the naive
// launch below.
func (c *Comm) AllToAll(mine [][]byte) ([][]byte, error) {
	if !c.naiveAllNode {
		return c.allToAllScheduled(mine)
	}
	defer c.next()
	me := c.Rank()
	if len(mine) != c.Size() {
		return nil, fmt.Errorf("comm: alltoall needs %d payloads, got %d", c.Size(), len(mine))
	}
	out := make([][]byte, c.Size())
	out[me] = mine[me]
	for _, ch := range bst.Children(c.n, me, me) {
		var parts []mpx.Part
		for _, d := range subtreeBST(c.n, ch, me) {
			parts = append(parts, mpx.Part{Dest: d, Data: mine[d]})
		}
		c.send(ch, int(me)+1, parts)
	}
	for seen := 0; seen < c.Size()-1; seen++ {
		env, err := c.recvTagAnyRoot()
		if err != nil {
			return nil, err
		}
		r := cube.NodeID(svc.StreamSub(env.Tag) - 1)
		mine, found, err := c.routeParts(c.route(r), env.Parts, int(r)+1, "alltoall")
		if err != nil {
			return nil, err
		}
		if found {
			if out[r] != nil {
				return nil, fmt.Errorf("comm: duplicate alltoall payload from %d", r)
			}
			out[r] = mine
		}
	}
	return out, nil
}
