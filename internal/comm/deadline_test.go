package comm

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/mpx"
)

// TestSetDeadlineTurnsHangIntoError blocks a rank on a peer that is
// silent — alive, connected, just never sending — and expects the
// collective deadline to convert the indefinite hang into a typed
// *DeadlineError naming the waiting rank.
func TestSetDeadlineTurnsHangIntoError(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if c.Rank() == 0 {
			// The silent peer: never participates in the broadcast.
			return nil
		}
		c.SetDeadline(80 * time.Millisecond)
		_, err := c.Bcast(0, nil)
		return err
	})
	if err == nil {
		t.Fatal("Bcast against a silent root returned nil")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error is %v, want a *DeadlineError", err)
	}
	if de.Rank != 1 {
		t.Fatalf("DeadlineError names rank %d, want 1", de.Rank)
	}
	if de.Wait != 80*time.Millisecond {
		t.Fatalf("DeadlineError reports wait %v, want 80ms", de.Wait)
	}
}

// TestSetDeadlineDoesNotFireOnHealthyCollectives runs a normal
// collective sequence under a generous deadline: nothing may time out.
func TestSetDeadlineDoesNotFireOnHealthyCollectives(t *testing.T) {
	payload := []byte("deadline-armed broadcast")
	err := Run(2, func(c *Comm) error {
		c.SetDeadline(10 * time.Second)
		got, err := c.Bcast(0, payload)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("rank %d got %q", c.Rank(), got)
		}
		if _, err := c.AllGather([]byte{byte(c.Rank())}); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineNamesPeerAfterConnectionLoss arms a deadline on a rank
// whose awaited traffic crosses a severed link: the expiry must prefer
// the machine-wide connection diagnosis — wrapping *mpx.PeerError — over
// the bare timeout.
func TestDeadlineNamesPeerAfterConnectionLoss(t *testing.T) {
	tr := mpx.NewChanTransport(1, CollectiveDepth(1), nil)
	if err := tr.SeverLink(0, 1); err != nil {
		t.Fatal(err)
	}
	err := RunOn(mpx.NewWithTransport(tr, nil), func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // cannot send across the severed link anyway
		}
		c.SetDeadline(80 * time.Millisecond)
		_, err := c.Bcast(0, nil)
		return err
	})
	if err == nil {
		t.Fatal("Bcast across a severed link returned nil")
	}
	var pe *mpx.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %v, want to wrap *mpx.PeerError", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error hides the deadline expiry: %v", err)
	}
}

// TestStoppedErrWrapsPeerErrorForCollateralRanks is the satellite fix's
// end-to-end check: when ONE link dies fatally, every stalled rank —
// including ranks whose own links are healthy — must surface an error
// that errors.As unwraps to the *mpx.PeerError, not a bare "machine
// stopped" that callers can only string-match.
func TestStoppedErrWrapsPeerErrorForCollateralRanks(t *testing.T) {
	tr := mpx.NewChanTransport(2, CollectiveDepth(2), nil)
	var mu sync.Mutex
	rankErrs := make([]error, 4)
	// The root stays silent, so ranks 1..3 park in the blocking receive
	// without ever sending — the link failure then lands from outside
	// while they wait, deterministically exercising the stoppedErr path
	// (a rank that SENDS on a dead link aborts via the transport panic
	// instead and records nothing).
	go func() {
		time.Sleep(30 * time.Millisecond)
		tr.FailLink(1, 3)
	}()
	RunOn(mpx.NewWithTransport(tr, nil), func(c *Comm) error {
		if c.Rank() == 0 {
			return nil // silent root: never feeds the broadcast
		}
		_, err := c.Bcast(0, nil)
		mu.Lock()
		rankErrs[c.Rank()] = err
		mu.Unlock()
		return err
	})
	for rank := cube.NodeID(1); rank <= 3; rank++ {
		err := rankErrs[rank]
		if err == nil {
			t.Fatalf("rank %d returned nil across a failed transport", rank)
		}
		var pe *mpx.PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("rank %d error does not wrap *mpx.PeerError: %v", rank, err)
		}
		if !(pe.Self == 1 && pe.Peer == 3) && !(pe.Self == 3 && pe.Peer == 1) {
			t.Fatalf("rank %d PeerError names link %d->%d, want the 1<->3 edge", rank, pe.Self, pe.Peer)
		}
		if !strings.Contains(err.Error(), "connection lost") {
			t.Fatalf("rank %d error lacks the transport diagnosis: %v", rank, err)
		}
	}
	// Rank 2 is the collateral case the fix exists for: its own links
	// (2<->0 and 2<->3) are healthy — the dead edge is 1<->3 — yet the
	// loop above proved its error names the dead link all the same.
}
