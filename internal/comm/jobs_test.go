package comm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/svc"
	"repro/internal/transport"
)

// clusterRunners runs a service-cluster test over both backends.
func clusterRunners(t *testing.T, n int, opt svc.Options, topt TCPRunOptions, test func(t *testing.T, cl *Cluster)) {
	t.Run("chan", func(t *testing.T) {
		t.Parallel()
		test(t, StartLocalCluster(n, opt))
	})
	t.Run("tcp", func(t *testing.T) {
		t.Parallel()
		cl, err := StartCluster(n, opt, topt)
		if err != nil {
			t.Fatal(err)
		}
		test(t, cl)
	})
}

// TestServiceMixedJobs is the acceptance e2e: 20 concurrent jobs from 5
// tenants — mixed broadcast, scatter and allreduce with distinct roots —
// on one shared d=4 mesh, over both the in-process and the TCP backend,
// every job verifying its own result byte-exactly on every rank.
func TestServiceMixedJobs(t *testing.T) {
	const (
		n       = 4
		jobs    = 20
		tenants = 5
	)
	clusterRunners(t, n, svc.Options{TenantInFlight: 2}, TCPRunOptions{},
		func(t *testing.T, cl *Cluster) {
			handles := make([]*ClusterHandle, jobs)
			for i := 0; i < jobs; i++ {
				h, err := cl.SubmitSpec(MixedJobSpec(n, tenants, 77, i))
				if err != nil {
					t.Fatal(err)
				}
				handles[i] = h
			}
			for i, h := range handles {
				if err := h.Wait(); err != nil {
					t.Errorf("job %d (%v): %v", i, MixedJobSpec(n, tenants, 77, i), err)
				}
			}
			st := cl.Stats()
			if err := cl.Drain(); err != nil {
				t.Fatal(err)
			}
			// Per-job accounting must cover every job that moved payload
			// and sum to the transport's goodput counter.
			var sum int64
			for _, v := range st.PayloadByJob {
				sum += v
			}
			if sum != st.PayloadDelivered {
				t.Errorf("per-job payload sum %d != PayloadDelivered %d", sum, st.PayloadDelivered)
			}
			if len(st.PayloadByJob) < jobs {
				t.Errorf("per-job stats cover %d keys, want >= %d", len(st.PayloadByJob), jobs)
			}
		})
}

// TestServiceIsolationRandom is the cross-job bleed property test: a
// randomized interleaving of concurrent collectives with distinct tag
// slices, over both backends, each verifying byte-exact payloads —
// any cross-job delivery fails some job's self-check. Run under -race.
func TestServiceIsolationRandom(t *testing.T) {
	const n = 3
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	seed := rng.Int63n(1 << 30)
	t.Logf("isolation seed %d", seed)
	clusterRunners(t, n, svc.Options{TenantInFlight: 3}, TCPRunOptions{},
		func(t *testing.T, cl *Cluster) {
			rng := rand.New(rand.NewSource(seed))
			jobs := 24 + rng.Intn(16)
			handles := make([]*ClusterHandle, 0, jobs)
			specs := make([]JobSpec, 0, jobs)
			for i := 0; i < jobs; i++ {
				s := JobSpec{
					Tenant: 1 + rng.Intn(6),
					Kind:   JobKind(rng.Intn(int(numJobKinds))),
					Root:   cube.NodeID(rng.Intn(1 << n)),
					Seed:   rng.Int63(),
					Bytes:  1 + rng.Intn(2048),
				}
				h, err := cl.SubmitSpec(s)
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
				specs = append(specs, s)
			}
			for i, h := range handles {
				if err := h.Wait(); err != nil {
					t.Errorf("job %d %v: %v", i, specs[i], err)
				}
			}
			if err := cl.Drain(); err != nil {
				t.Fatal(err)
			}
		})
}

// TestServiceTCPResilientAndBatched exercises the service over
// resilient links (sequenced frames, no batch aggregation) and over
// plain links with a BatchHold aggregation window — the two wire
// configurations a deployment chooses between.
func TestServiceTCPResilientAndBatched(t *testing.T) {
	const n, jobs, tenants = 3, 12, 4
	run := func(t *testing.T, topt TCPRunOptions) {
		cl, err := StartCluster(n, svc.Options{TenantInFlight: 2}, topt)
		if err != nil {
			t.Fatal(err)
		}
		handles := make([]*ClusterHandle, jobs)
		for i := 0; i < jobs; i++ {
			h, err := cl.SubmitSpec(MixedJobSpec(n, tenants, 123, i))
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			if err := h.Wait(); err != nil {
				t.Errorf("job %d: %v", i, err)
			}
		}
		if err := cl.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("resilient", func(t *testing.T) {
		t.Parallel()
		run(t, TCPRunOptions{Resilience: transport.ResilienceOptions{Enabled: true}})
	})
	t.Run("batchhold", func(t *testing.T) {
		t.Parallel()
		run(t, TCPRunOptions{BatchHold: 2 * time.Millisecond})
	})
}
