package comm

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/fault"
	"repro/internal/mpx"
	"repro/internal/svc"
)

// fast FT options so fault tests spend milliseconds, not seconds, waiting
// on links that will never deliver.
var quick = FTOptions{Timeout: 25 * time.Millisecond, Retries: 3}

func TestBcastFTFaultFree(t *testing.T) {
	payload := []byte("redundant broadcast payload")
	for n := 1; n <= 4; n++ {
		err := Run(n, func(c *Comm) error {
			got, err := c.BcastFT(0, payload, quick)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("rank %d got %q", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestBcastFTExhaustiveSingleLink4Cube kills each of the 32 links of a
// 4-cube in turn and checks that every node still receives the exact
// payload: one dead link severs at most one of the four edge-disjoint
// ERSBTs, and the remaining three always cover the cube.
func TestBcastFTExhaustiveSingleLink4Cube(t *testing.T) {
	const n = 4
	c4 := cube.New(n)
	payload := []byte("every live node must still hear this")
	links := 0
	for _, e := range c4.DirectedEdges() {
		if e.From > e.To {
			continue
		}
		links++
		plan := fault.NewPlan(n).KillLink(e.From, e.To)
		delivered := make([][]byte, c4.Nodes())
		err := RunFaulty(n, plan.Injector(), func(c *Comm) error {
			got, err := c.BcastFT(0, payload, quick)
			if err != nil {
				return err
			}
			delivered[c.Rank()] = got
			return nil
		})
		if err != nil {
			t.Fatalf("dead link %d-%d: %v", e.From, e.To, err)
		}
		for id, got := range delivered {
			if !bytes.Equal(got, payload) {
				t.Errorf("dead link %d-%d: node %d received %q", e.From, e.To, id, got)
			}
		}
	}
	if links != n<<(n-1) {
		t.Fatalf("covered %d links, want %d", links, n<<(n-1))
	}
}

// TestBcastFTToleratesNMinusOneDeadLinks severs n-1 of one node's n links;
// the surviving link carries exactly one tree's copy, which must suffice.
func TestBcastFTToleratesNMinusOneDeadLinks(t *testing.T) {
	const n = 3
	plan := fault.NewPlan(n).KillLink(7, 6).KillLink(7, 5) // only 7-3 survives
	payload := []byte("one tree left")
	err := RunFaulty(n, plan.Injector(), func(c *Comm) error {
		got, err := c.BcastFT(0, payload, quick)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBcastFTSurvivesCorruptingLink damages every message on one link;
// checksum verification rejects those copies and another tree's copy is
// accepted instead — corruption triggers retry-by-redundancy, not failure.
func TestBcastFTSurvivesCorruptingLink(t *testing.T) {
	const n = 3
	plan := fault.NewPlan(n).
		AddRule(fault.Rule{Link: cube.Edge{From: 0, To: 1}, Kind: fault.Corrupt, Nth: fault.EveryMessage}).
		AddRule(fault.Rule{Link: cube.Edge{From: 1, To: 0}, Kind: fault.Corrupt, Nth: fault.EveryMessage})
	payload := []byte("checksums catch the flip")
	err := RunFaulty(n, plan.Injector(), func(c *Comm) error {
		got, err := c.BcastFT(0, payload, quick)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("rank %d accepted corrupt payload %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeLivenessFaultFree(t *testing.T) {
	const n = 3
	err := Run(n, func(c *Comm) error {
		live, err := c.ProbeLiveness(quick)
		if err != nil {
			return err
		}
		if live.LiveCount() != c.Size() {
			return fmt.Errorf("rank %d sees %d live nodes, want %d (%v)", c.Rank(), live.LiveCount(), c.Size(), live)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeLivenessDetectsDeadNode(t *testing.T) {
	const n = 3
	dead := cube.NodeID(5)
	plan := fault.NewPlan(n).KillNode(dead)
	var mu sync.Mutex
	masks := map[cube.NodeID]fault.Liveness{}
	err := RunFaulty(n, plan.Injector(), func(c *Comm) error {
		live, err := c.ProbeLiveness(quick)
		if err != nil {
			return err
		}
		mu.Lock()
		masks[c.Rank()] = live
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(masks) != 7 {
		t.Fatalf("%d ranks reported, want 7", len(masks))
	}
	for id, live := range masks {
		if live.Alive(dead) {
			t.Errorf("rank %d believes dead node %d alive", id, dead)
		}
		if live.LiveCount() != 7 {
			t.Errorf("rank %d sees %d live nodes, want 7 (%v)", id, live.LiveCount(), live)
		}
	}
}

func TestScatterFTFaultFreeMatchesScatter(t *testing.T) {
	const n = 3
	data := make([][]byte, 1<<n)
	for i := range data {
		data[i] = []byte{byte(i), byte(i * 3)}
	}
	err := Run(n, func(c *Comm) error {
		plain, err := c.Scatter(2, data)
		if err != nil {
			return err
		}
		ft, err := c.ScatterFT(2, data, fault.AllAlive(n), quick)
		if err != nil {
			return err
		}
		if !bytes.Equal(plain, ft) {
			return fmt.Errorf("rank %d: ScatterFT %v != Scatter %v", c.Rank(), ft, plain)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScatterFTAroundDeadNode removes a mid-tree node; every other rank
// still receives exactly its payload over the regrafted balanced tree.
func TestScatterFTAroundDeadNode(t *testing.T) {
	const n = 3
	root := cube.NodeID(0)
	dead := cube.NodeID(1) // a direct child of the BST root
	plan := fault.NewPlan(n).KillNode(dead)
	live := plan.Liveness()
	data := make([][]byte, 1<<n)
	for i := range data {
		data[i] = []byte(fmt.Sprintf("payload-%d", i))
	}
	var mu sync.Mutex
	got := map[cube.NodeID][]byte{}
	err := RunFaulty(n, plan.Injector(), func(c *Comm) error {
		mine, err := c.ScatterFT(root, data, live, quick)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = mine
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<n; i++ {
		id := cube.NodeID(i)
		if id == dead {
			if _, ran := got[id]; ran {
				t.Errorf("dead node %d ran", id)
			}
			continue
		}
		if !bytes.Equal(got[id], data[i]) {
			t.Errorf("rank %d received %q, want %q", id, got[id], data[i])
		}
	}
}

// TestStaleSequenceErrorDetail pins the corruption diagnostic (who sent
// it, which tag, which sequences) by planting an out-of-order message.
func TestStaleSequenceErrorDetail(t *testing.T) {
	c := &Comm{nd: &mpx.Node{ID: 3}, n: 3, seq: 2, mailbox: map[int][]mpx.Envelope{}, abandoned: map[int]bool{}}
	c.cond = sync.NewCond(&c.mu)
	staleTag := svc.Tag{Seq: 1, Sub: 5}.MustEncode() // one collective behind
	c.mailbox[staleTag] = []mpx.Envelope{{Message: mpx.Message{Tag: staleTag}, From: 6}}
	_, err := c.recvTag(c.tagFor(5))
	if err == nil {
		t.Fatal("stale collective message went undetected")
	}
	for _, want := range []string{"rank 6", fmt.Sprintf("%#x", staleTag), "sequence 1", "expected sequence 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
