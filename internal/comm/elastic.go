// Elastic membership: communicator support for meshes whose population
// changes at runtime. An Elastic endpoint wires one rank's transport
// (member mode), its membership manager, and a reactive tree repairer
// into a single handle; programs run against a Session and pin the
// current view into a ViewComm before each batch of collectives. When
// the view changes under a pinned collective — a crash detected, a
// drain announced, a joiner admitted — the collective either completes
// on the old view or fails with a *member.ViewChangedError carrying the
// new epoch, and RetryOnViewChange re-pins and reruns it.
//
// Tag discipline: every epoch owns a (tenant, job) slice of the tag
// space — tenant ElasticTenant, job = epoch mod (MaxJob+1) — and the
// collective sequence restarts at zero on every epoch change. Two ranks
// momentarily on different epochs therefore cannot mis-deliver into
// each other's collectives: the straggler's messages sit in the mailbox
// under a key nobody reads until its sender catches up, and the stale
// slice is dropped at the next rebase.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cube"
	"repro/internal/fault"
	"repro/internal/member"
	"repro/internal/mpx"
	"repro/internal/sbt"
	"repro/internal/svc"
	"repro/internal/transport"
)

// ElasticTenant is the reserved tenant id for epoch-scoped collective
// tags. The svc runtime hands out tenant ids from zero, so the topmost
// tenant never collides with a hosted job.
const ElasticTenant = svc.MaxTenant

// elasticBase encodes the (tenant, job) tag base of one membership
// epoch. Epochs are folded mod MaxJob+1: an alias needs 4096 view
// changes between two live epochs, far beyond any plausible overlap.
func elasticBase(epoch uint64) int {
	b, err := svc.Base(ElasticTenant, int(epoch%uint64(svc.MaxJob+1)))
	if err != nil {
		panic(err) // unreachable: both fields are in range by construction
	}
	return b
}

// DefaultElasticResilience is the link self-healing configuration an
// Elastic endpoint uses when the caller does not supply one: a few
// quick reconnect attempts, then escalation to the membership layer
// (which records the peer dead) rather than transport shutdown.
func DefaultElasticResilience() transport.ResilienceOptions {
	return transport.ResilienceOptions{
		Enabled:     true,
		MaxAttempts: 5,
		Budget:      2 * time.Second,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
}

// ElasticOptions configures one elastic-mesh endpoint.
type ElasticOptions struct {
	// Dim is the cube dimension; Self the (single) hosted rank.
	Dim  int
	Self cube.NodeID
	// Join marks a late joiner: the endpoint starts from an empty view
	// and attaches with Elastic.Join instead of Elastic.Connect.
	Join bool
	// Network picks the socket family ("tcp" default, or "unix").
	Network string
	// Listen fixes the listen address (empty = pick one: an ephemeral
	// port on tcp, a fresh socket path on unix).
	Listen string
	// Resilience tunes link self-healing; the zero value means
	// DefaultElasticResilience. The budget doubles as the crash
	// detection latency: a peer is declared dead when it exhausts this.
	Resilience transport.ResilienceOptions
	// WireVersion caps the wire protocol (0 = newest; member mode needs
	// at least wire v3 and NewElastic enforces it).
	WireVersion int
	// HandshakeTimeout bounds Connect/Join dials (0 = transport default).
	HandshakeTimeout time.Duration
	// Logf, when non-nil, receives membership diagnostics.
	Logf func(format string, args ...any)
}

// Elastic is one rank of an elastic mesh: a member-mode transport, its
// membership manager, and the reactive tree repairer the view
// collectives route over.
type Elastic struct {
	self cube.NodeID
	tr   *transport.TCP
	mgr  *member.Manager

	mu     sync.Mutex
	dim    int             // current cube dimension; grows with the view
	re     *fault.Reactive // tree repairer at dim; rebuilt on growth
	cur    *Comm           // the running Session's communicator; nil between Runs
	pinned uint64          // epoch the current ViewComm is pinned to; 0 = unpinned
}

// NewElastic builds one elastic endpoint. The transport listens
// immediately (Addr is valid) but attaches only on Connect or Join.
func NewElastic(opt ElasticOptions) (*Elastic, error) {
	if opt.Dim <= 0 {
		return nil, fmt.Errorf("comm: elastic endpoint needs a positive dimension, got %d", opt.Dim)
	}
	res := opt.Resilience
	if !res.Enabled {
		res = DefaultElasticResilience()
	}
	hooks := &transport.MemberHooks{}
	tr, err := transport.NewTCP(transport.TCPOptions{
		Dim: opt.Dim, Locals: []cube.NodeID{opt.Self},
		Listen:           opt.Listen,
		Depth:            CollectiveDepth(opt.Dim),
		HandshakeTimeout: opt.HandshakeTimeout,
		Resilience:       res,
		Network:          opt.Network,
		WireVersion:      opt.WireVersion,
		Member:           hooks,
	})
	if err != nil {
		return nil, err
	}
	mgr := member.New(member.Config{
		Self: opt.Self, Dim: opt.Dim, Join: opt.Join,
		Send: func(to cube.NodeID, kind byte, body []byte) error {
			return tr.SendControl(opt.Self, to, kind, body)
		},
		Logf: opt.Logf,
	})
	hooks.OnPeerDown = mgr.OnPeerDown
	hooks.OnControl = mgr.OnControl
	e := &Elastic{
		dim: opt.Dim, self: opt.Self, tr: tr, mgr: mgr,
		re: newRepairer(opt.Dim),
	}
	mgr.Subscribe(e.onView)
	// Bind the starting view so trees exist before the first change.
	e.re.Rebind(mgr.Epoch(), mgr.View().Live())
	return e, nil
}

// newRepairer builds a reactive tree repairer for a dim-cube over SBT
// base trees.
func newRepairer(dim int) *fault.Reactive {
	return fault.NewReactive(dim, func(root cube.NodeID) fault.ParentFunc {
		return func(i cube.NodeID) (cube.NodeID, bool) { return sbt.Parent(dim, i, root) }
	})
}

// reactive snapshots the current tree repairer (swapped on growth).
func (e *Elastic) reactive() *fault.Reactive {
	e.mu.Lock()
	re := e.re
	e.mu.Unlock()
	return re
}

// dimNow snapshots the current cube dimension (grows with the view).
func (e *Elastic) dimNow() int {
	e.mu.Lock()
	d := e.dim
	e.mu.Unlock()
	return d
}

// ensureDim widens the endpoint to a grown view's dimension: the
// transport re-dimensions its link mesh online (idempotent when a
// grow-attach handshake or KindGrow flood already widened it) and the
// tree repairer is rebuilt at the new dimension, so repaired trees span
// the grown cube. A no-op at or below the current dimension.
func (e *Elastic) ensureDim(dim int) {
	e.mu.Lock()
	if dim > e.dim {
		e.dim = dim
		e.re = newRepairer(dim)
	}
	e.mu.Unlock()
	// Outside e.mu: GrowTo takes the transport's own lock.
	e.tr.GrowTo(dim)
}

// onView tracks every view change: widen to a grown view's dimension,
// rebind the tree repairer, and if a collective is pinned to an older
// epoch, interrupt it. Runs on transport goroutines (read pumps,
// supervisors) — must not block.
func (e *Elastic) onView(v member.View) {
	ep := v.Epoch()
	if v.Dim > e.dimNow() {
		e.ensureDim(v.Dim)
	}
	e.reactive().Rebind(ep, v.Live())
	e.mu.Lock()
	c, pinned := e.cur, e.pinned
	e.mu.Unlock()
	if c != nil && pinned != 0 && ep > pinned {
		c.setInterrupt(&member.ViewChangedError{Epoch: ep, Op: "collective"})
	}
}

// Addr returns the endpoint's listen address (for peers' Connect/Join).
func (e *Elastic) Addr() string { return e.tr.Addr() }

// Rank returns the hosted rank.
func (e *Elastic) Rank() cube.NodeID { return e.self }

// Manager exposes the membership manager (views, epochs, waits).
func (e *Elastic) Manager() *member.Manager { return e.mgr }

// Transport exposes the underlying transport (stats, chaos agents).
func (e *Elastic) Transport() *transport.TCP { return e.tr }

// Connect attaches a founding member to the full mesh; peers is indexed
// by rank. Every founding endpoint must call it concurrently.
func (e *Elastic) Connect(peers []string) error { return e.tr.Connect(peers) }

// Join attaches a late joiner: dial every reachable neighbor (empty
// addresses mark known holes), announce the join through the membership
// layer, and wait for admission.
func (e *Elastic) Join(peers []string, timeout time.Duration) error {
	if err := e.tr.JoinMesh(peers); err != nil {
		return err
	}
	e.mgr.AnnounceJoin()
	if !e.mgr.WaitAlive(timeout) {
		return fmt.Errorf("comm: joiner %d not admitted within %v", e.self, timeout)
	}
	return nil
}

// Drain announces a graceful leave (peers record Drained, not Dead) and
// gives the announcement a moment to flush before closing. The caller's
// running program, if any, fails with a shutdown error — by design: a
// draining rank stops participating.
func (e *Elastic) Drain(settle time.Duration) error {
	e.mgr.Drain()
	time.Sleep(settle)
	return e.tr.Close()
}

// Crash kills the endpoint without any announcement: peers see a lost
// connection and their supervisors burn the resilience budget before
// declaring this rank dead — exactly a process crash, minus the SIGKILL.
func (e *Elastic) Crash() error { return e.tr.Abort() }

// Close shuts the endpoint down cleanly (BYE on every link).
func (e *Elastic) Close() error { return e.tr.Close() }

// Run executes program against a Session for the hosted rank. It
// returns when the program does; the transport stays open (so a
// finished program can be followed by Drain or Close — which also
// releases the communicator's pump goroutine).
func (e *Elastic) Run(program func(s *Session) error) error {
	m := mpx.NewWithTransport(e.tr, nil)
	return m.Run(func(nd *mpx.Node) error {
		c := newComm(nd, e.dimNow(), elasticBase(e.mgr.Epoch()), nil)
		defer c.stop()
		e.mu.Lock()
		e.cur = c
		e.mu.Unlock()
		defer func() {
			e.mu.Lock()
			e.cur = nil
			e.pinned = 0
			e.mu.Unlock()
		}()
		return program(&Session{e: e, c: c})
	})
}

// Session is a rank's handle inside Elastic.Run: it pins membership
// views into ViewComms and reruns view-sensitive work.
type Session struct {
	e *Elastic
	c *Comm
}

// Rank returns the hosted rank.
func (s *Session) Rank() cube.NodeID { return s.c.Rank() }

// Epoch returns the manager's current epoch (advances under the caller
// at any time; pin a view to hold one still).
func (s *Session) Epoch() uint64 { return s.e.mgr.Epoch() }

// Manager exposes the membership manager.
func (s *Session) Manager() *member.Manager { return s.e.mgr }

// Pin snapshots the current membership view into a ViewComm. On an
// epoch change since the last pin, the communicator rebases into the
// new epoch's tag slice (collective sequence restarts at zero; the
// previous epoch's queued stragglers are dropped); re-pinning the same
// epoch keeps the sequence running — ranks re-pinning between
// collectives of a stable view stay in lockstep.
func (s *Session) Pin() (*ViewComm, error) {
	for {
		v := s.e.mgr.View()
		ep := v.Epoch()
		me := s.c.Rank()
		if !v.Alive(me) {
			return nil, fmt.Errorf("comm: rank %d is not alive in view %s", me, v)
		}
		// A view that outgrew this endpoint re-dimensions it before the
		// pin: transport links widen online and the repairer is rebuilt
		// at the new dimension (both idempotent when onView already did
		// it), then the communicator itself. n and routes are touched
		// only from the rank's own goroutine — which is the one pinning.
		if v.Dim > s.c.n {
			s.e.ensureDim(v.Dim)
			s.c.n = v.Dim
			s.c.routes = nil
		}
		root, ok := v.LowestLive()
		if !ok || int(root) >= s.c.Size() {
			return nil, fmt.Errorf("comm: view %s has no live root inside the %d-cube", v, s.c.n)
		}
		s.e.reactive().Rebind(ep, v.Live())
		s.e.mu.Lock()
		s.e.pinned = ep
		s.e.mu.Unlock()
		if base := elasticBase(ep); base != s.c.base {
			s.c.rebase(base)
		}
		// A view change between the snapshot above and here would leave a
		// pin the interrupt path may have already missed; re-check and
		// loop rather than hand out a stale ViewComm.
		if s.e.mgr.Epoch() != ep {
			continue
		}
		return &ViewComm{s: s, view: v, epoch: ep, root: root}, nil
	}
}

// RetryOnViewChange runs fn against a freshly pinned view, re-pinning
// and rerunning whenever fn fails with a *member.ViewChangedError —
// the membership changed under it. fn must be restartable: a retried
// attempt reruns from the top on the new view, and peers that completed
// the previous attempt on the old view will see the rerun too (root
// payloads should carry enough identity for receivers to deduplicate).
// attempts <= 0 retries without bound; otherwise the last view-change
// error is returned once attempts are exhausted. Any other error — and
// a Pin failure, such as this rank no longer being in the view — is
// returned immediately.
func (s *Session) RetryOnViewChange(attempts int, fn func(vc *ViewComm) error) error {
	var last error
	for i := 0; attempts <= 0 || i < attempts; i++ {
		vc, err := s.Pin()
		if err != nil {
			return err
		}
		err = fn(vc)
		var vce *member.ViewChangedError
		if !errors.As(err, &vce) {
			return err
		}
		last = err
	}
	return last
}

// ViewComm is a communicator pinned to one membership epoch: its
// collectives run over the repaired spanning tree of the view's live
// ranks, rooted at the lowest live rank. A view change in flight makes
// them fail with a *member.ViewChangedError instead of blocking on
// ranks that moved on. Ranks the view grew beyond the founding cube
// participate like any other once they grow-attach to the transport
// mesh: pinning a grown view re-dimensions the endpoint online (links
// widen, trees rebuild at the new dimension) with no restart — until a
// joiner's attach reaches this endpoint, sends toward it drop silently
// and the repaired tree simply routes around the hole.
type ViewComm struct {
	s     *Session
	view  member.View
	epoch uint64
	root  cube.NodeID
}

// Epoch returns the pinned epoch.
func (v *ViewComm) Epoch() uint64 { return v.epoch }

// View returns the pinned view snapshot.
func (v *ViewComm) View() member.View { return v.view }

// Rank returns this rank.
func (v *ViewComm) Rank() cube.NodeID { return v.s.c.Rank() }

// Root returns the view's collective root (lowest live rank).
func (v *ViewComm) Root() cube.NodeID { return v.root }

// Size returns the cube size (the payload-index space; dead ranks leave
// nil holes in Gather's result).
func (v *ViewComm) Size() int { return v.s.c.Size() }

// tree resolves the repaired tree for the pinned epoch, translating a
// stale-epoch refusal into the typed view-change error.
func (v *ViewComm) tree(op string) (*fault.Tree, error) {
	re := v.s.e.reactive()
	t, err := re.Tree(v.epoch, v.root)
	if err != nil {
		if cur := re.Epoch(); cur != v.epoch {
			return nil, &member.ViewChangedError{Epoch: cur, Op: op}
		}
		return nil, err
	}
	if !t.Contains(v.Rank()) {
		return nil, fmt.Errorf("comm: rank %d unreachable in the repaired tree of epoch %d", v.Rank(), v.epoch)
	}
	return t, nil
}

// Bcast distributes data from the view root to every live rank along
// the repaired tree; every rank returns the payload (the root passes
// its own data, other ranks pass nil).
func (v *ViewComm) Bcast(data []byte) ([]byte, error) {
	c := v.s.c
	defer c.next()
	t, err := v.tree("bcast")
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	if me != v.root {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		data = env.Parts[0].Data
	}
	for _, ch := range t.Children(me) {
		c.send(ch, 0, []mpx.Part{{Dest: v.root, Data: data}})
	}
	return data, nil
}

// Gather collects every live rank's payload at the view root, leaf-up
// along the repaired tree; the root returns payloads indexed by rank
// (nil at dead ranks), others return nil.
func (v *ViewComm) Gather(mine []byte) ([][]byte, error) {
	c := v.s.c
	defer c.next()
	t, err := v.tree("gather")
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	parts := []mpx.Part{{Dest: me, Data: mine}}
	for range t.Children(me) {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		parts = append(parts, env.Parts...)
	}
	if p, ok := t.Parent(me); ok {
		c.send(p, 0, parts)
		return nil, nil
	}
	out := make([][]byte, c.Size())
	for _, pt := range parts {
		out[pt.Dest] = pt.Data
	}
	return out, nil
}

// AllReduce folds every live rank's contribution with op and returns
// the result on every live rank: a reduction up the repaired tree, then
// a broadcast of the result back down — the dimension-exchange
// algorithm needs full cube population, which an elastic view cannot
// promise. op must be associative and commutative.
func (v *ViewComm) AllReduce(mine []byte, op func(a, b []byte) []byte) ([]byte, error) {
	c := v.s.c
	defer c.next()
	t, err := v.tree("allreduce")
	if err != nil {
		return nil, err
	}
	me := c.Rank()
	acc := append([]byte(nil), mine...)
	for range t.Children(me) {
		env, err := c.recvTag(c.tagFor(0))
		if err != nil {
			return nil, err
		}
		acc = op(acc, env.Parts[0].Data)
	}
	if p, ok := t.Parent(me); ok {
		c.send(p, 0, []mpx.Part{{Dest: v.root, Data: acc}})
		env, err := c.recvTag(c.tagFor(1))
		if err != nil {
			return nil, err
		}
		acc = env.Parts[0].Data
	}
	for _, ch := range t.Children(me) {
		c.send(ch, 1, []mpx.Part{{Dest: v.root, Data: acc}})
	}
	return acc, nil
}

// Barrier blocks until every live rank of the pinned view has entered
// it (an AllReduce of empty payloads).
func (v *ViewComm) Barrier() error {
	_, err := v.AllReduce(nil, func(a, _ []byte) []byte { return a })
	return err
}

// setInterrupt fails every blocking receive on the communicator with
// err (a view-change notice) and wakes the waiters.
func (c *Comm) setInterrupt(err error) {
	c.mu.Lock()
	c.interrupt = err
	c.cond.Broadcast()
	c.mu.Unlock()
}

// rebase moves the communicator into the tag slice of a new membership
// epoch: the collective sequence restarts at zero, any pending
// interrupt is cleared, and the previous epoch's queued stragglers are
// dropped. Messages queued under OTHER keys — epochs this rank skipped,
// or a peer running ahead — are kept: a fast peer's early traffic must
// survive until this rank catches up. (Slices of epochs nobody ever
// rebases into can linger until shutdown; churn counts are small enough
// that this stays bounded in practice.)
func (c *Comm) rebase(base int) {
	c.mu.Lock()
	oldKey := c.key
	c.base = base
	c.key = svc.JobKeyOf(base)
	c.seq = 0
	c.interrupt = nil
	if oldKey != c.key {
		for tag := range c.mailbox {
			if svc.JobKeyOf(tag) == oldKey {
				delete(c.mailbox, tag)
			}
		}
	}
	c.reseedLocked()
	c.mu.Unlock()
}
