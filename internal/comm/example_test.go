package comm_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
)

// Every node runs the same program, exactly like an iPSC application: the
// root broadcasts a greeting down the spanning binomial tree, then all
// ranks sum their ranks with a dimension-exchange all-reduce.
func ExampleRun() {
	var mu sync.Mutex
	var lines []string
	err := comm.Run(2, func(c *comm.Comm) error {
		var in []byte
		if c.Rank() == 0 {
			in = []byte("go")
		}
		msg, err := c.Bcast(0, in)
		if err != nil {
			return err
		}
		sum, err := c.AllReduce([]byte{byte(c.Rank())}, func(a, b []byte) []byte {
			return []byte{a[0] + b[0]}
		})
		if err != nil {
			return err
		}
		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d: msg=%s sum=%d", c.Rank(), msg, sum[0]))
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// rank 0: msg=go sum=6
	// rank 1: msg=go sum=6
	// rank 2: msg=go sum=6
	// rank 3: msg=go sum=6
}
