package comm

// Scheduled all-node collectives: AllGather and AllToAll walking the
// contention-aware multi-source slot table from internal/sched instead
// of forwarding on arrival.
//
// sched.MultiSourcePlan packs the canonical (source-0) BST's edges into
// slots with at most one edge per cube dimension per slot — by the
// XOR-translation symmetry, that is exactly the condition for all 2^d
// sources' translated copies of a slot to occupy disjoint directed
// links. Every rank consumes the ONE canonical table directly: for a
// canonical edge u→v, rank r is the sender in source s = u^r's tree,
// and the physical destination is r^(u^v) (the edge's cube dimension is
// XOR-invariant). No per-rank or per-source schedule is materialized.
//
// Gating is causal, not barriered: a rank walks the slot-major edge
// list in order and blocks only until the payload a slot entry forwards
// has arrived. The delivering edge always sits in a strictly earlier
// slot (sched.MultiPlan.Verify), so when all ranks walk the same list
// the per-slot link-disjointness is realized without any barrier
// round-trips — and a rank can never deadlock: the globally earliest
// blocked entry's dependency has, by that same ordering, already been
// sent. The scheduled and naive modes send the same tree edges with the
// same tags and payloads, so they are wire-compatible and byte-exact
// equivalent (asserted by TestAllNodeScheduledNaiveEquivalence).

import (
	"fmt"

	"repro/internal/bst"
	"repro/internal/cube"
	"repro/internal/mpx"
	"repro/internal/sched"
	"repro/internal/svc"
)

// SetAllNodeSchedule toggles the contention-aware multi-source schedule
// for the all-node collectives (AllGather, AllToAll). It is ON by
// default; off restores the naive forward-on-arrival launch — the A/B
// baseline bench10 measures against. Call from the rank's own
// goroutine, like SetAutotune.
func (c *Comm) SetAllNodeSchedule(on bool) { c.naiveAllNode = !on }

// allGatherScheduled runs the N concurrent broadcasts in slot order:
// for each canonical edge u→v, this rank forwards source (u^me)'s
// payload to me^(u^v) when the edge's slot comes up, blocking only if
// that payload has not yet arrived.
func (c *Comm) allGatherScheduled(mine []byte) ([][]byte, error) {
	defer c.next()
	me := c.Rank()
	out := make([][]byte, c.Size())
	out[me] = mine
	got := make([]bool, c.Size())
	got[me] = true
	seen := 0
	recvOne := func() error {
		env, err := c.recvTagAnyRoot()
		if err != nil {
			return err
		}
		r := cube.NodeID(svc.StreamSub(env.Tag) - 1)
		if int(r) >= c.Size() || got[r] {
			return fmt.Errorf("comm: duplicate allgather payload from %d", r)
		}
		out[r] = env.Parts[0].Data
		got[r] = true
		seen++
		return nil
	}
	for _, e := range sched.MultiSourcePlan(c.n).Edges {
		s := e.From ^ me
		for !got[s] {
			if err := recvOne(); err != nil {
				return nil, err
			}
		}
		c.send(me^e.From^e.To, int(s)+1, []mpx.Part{{Dest: s, Data: out[s]}})
	}
	for seen < c.Size()-1 {
		if err := recvOne(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// allToAllScheduled runs the N concurrent personalized scatters in slot
// order. Each arriving bundle is bucketed by child subtree ONCE (same
// two-pass layout as the naive path's routeParts, but retained instead
// of forwarded), and each bucket goes out when its canonical edge's
// slot comes up — e.Child indexes the buckets because ports, and hence
// port-ordered child lists, are XOR-invariant under translation.
func (c *Comm) allToAllScheduled(mine [][]byte) ([][]byte, error) {
	defer c.next()
	me := c.Rank()
	if len(mine) != c.Size() {
		return nil, fmt.Errorf("comm: alltoall needs %d payloads, got %d", c.Size(), len(mine))
	}
	out := make([][]byte, c.Size())
	out[me] = mine[me]
	bufs := make([][]mpx.Part, c.Size()) // per-source bucketed forwards
	offs := make([][]int32, c.Size())    // per-source child bucket bounds
	got := make([]bool, c.Size())
	got[me] = true
	seen := 0
	recvOne := func() error {
		env, err := c.recvTagAnyRoot()
		if err != nil {
			return err
		}
		r := cube.NodeID(svc.StreamSub(env.Tag) - 1)
		if int(r) >= c.Size() || got[r] {
			return fmt.Errorf("comm: duplicate alltoall payload from %d", r)
		}
		myPart, found, buf, off, err := c.bucketParts(c.route(r), env.Parts, "alltoall")
		if err != nil {
			return err
		}
		if found {
			out[r] = myPart
		}
		bufs[r], offs[r] = buf, off
		got[r] = true
		seen++
		return nil
	}
	tr := bst.Cached(c.n, me)
	for _, e := range sched.MultiSourcePlan(c.n).Edges {
		s := e.From ^ me
		to := me ^ e.From ^ e.To
		if s == me {
			// Root injection: this edge leaves my own tree's root, so the
			// bundle is cut from my payloads, one part per subtree node.
			nodes := tr.SubtreeNodes(to)
			parts := make([]mpx.Part, 0, len(nodes))
			for _, d := range nodes {
				parts = append(parts, mpx.Part{Dest: d, Data: mine[d]})
			}
			c.send(to, int(me)+1, parts)
			continue
		}
		for !got[s] {
			if err := recvOne(); err != nil {
				return nil, err
			}
		}
		if seg := bufs[s][offs[s][e.Child]:offs[s][e.Child+1]]; len(seg) > 0 {
			c.send(to, int(s)+1, seg)
		}
	}
	for seen < c.Size()-1 {
		if err := recvOne(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// bucketParts is routeParts' scheduled twin: the same two-pass
// child-subtree bucketing, but the buckets are returned (with their
// bounds) instead of sent — the slot-gated sends need them to persist
// past the envelope. One part buffer and one bounds slice are allocated
// per envelope, the same count as the naive path.
func (c *Comm) bucketParts(rt *rootRoute, parts []mpx.Part, op string) (mine []byte, found bool, buf []mpx.Part, off []int32, err error) {
	me := c.Rank()
	off = make([]int32, len(rt.children)+1)
	forward := 0
	for _, pt := range parts {
		if pt.Dest == me {
			continue
		}
		s := rt.slot[pt.Dest]
		if s < 0 {
			return nil, false, nil, nil, fmt.Errorf("comm: %s part for %d outside %d's subtree", op, pt.Dest, me)
		}
		off[s+1]++
		forward++
	}
	for i := range rt.children {
		off[i+1] += off[i]
	}
	buf = make([]mpx.Part, forward)
	// Second pass places parts using rt.ends as write cursors (scratch,
	// same as routeParts).
	for i := range rt.children {
		rt.ends[i] = int(off[i])
	}
	for _, pt := range parts {
		if pt.Dest == me {
			mine, found = pt.Data, true
			continue
		}
		s := rt.slot[pt.Dest]
		buf[rt.ends[s]] = pt
		rt.ends[s]++
	}
	return mine, found, buf, off, nil
}
