package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/member"
	"repro/internal/transport"
)

// elasticRes keeps crash-detection cycles short for tests.
func elasticRes() transport.ResilienceOptions {
	return transport.ResilienceOptions{
		Enabled:     true,
		MaxAttempts: 4,
		Budget:      1500 * time.Millisecond,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  30 * time.Millisecond,
	}
}

func startElastic(t *testing.T, dim int, id cube.NodeID, join bool) *Elastic {
	t.Helper()
	e, err := NewElastic(ElasticOptions{
		Dim: dim, Self: id, Join: join,
		Resilience:       elasticRes(),
		HandshakeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewElastic(%d): %v", id, err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// elasticMesh bootstraps a full d-cube of elastic endpoints.
func elasticMesh(t *testing.T, dim int) ([]*Elastic, []string) {
	t.Helper()
	n := 1 << uint(dim)
	eps := make([]*Elastic, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		eps[i] = startElastic(t, dim, cube.NodeID(i), false)
		addrs[i] = eps[i].Addr()
	}
	errs := make(chan error, n)
	for _, e := range eps {
		go func(e *Elastic) { errs <- e.Connect(addrs) }(e)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Connect: %v", err)
		}
	}
	return eps, addrs
}

// TestElasticStableView: on a full, unchanging view the ViewComm
// collectives behave like the plain ones — broadcast reaches everyone,
// gather assembles every rank's payload at the root, allreduce agrees.
func TestElasticStableView(t *testing.T) {
	const dim = 2
	eps, _ := elasticMesh(t, dim)
	errs := make(chan error, len(eps))
	for _, e := range eps {
		go func(e *Elastic) {
			errs <- e.Run(func(s *Session) error {
				vc, err := s.Pin()
				if err != nil {
					return err
				}
				if vc.Root() != 0 {
					return fmt.Errorf("root %d, want 0", vc.Root())
				}
				var data []byte
				if vc.Rank() == vc.Root() {
					data = []byte("elastic hello")
				}
				got, err := vc.Bcast(data)
				if err != nil {
					return err
				}
				if string(got) != "elastic hello" {
					return fmt.Errorf("rank %d: bcast got %q", vc.Rank(), got)
				}
				sums, err := vc.Gather([]byte{byte(vc.Rank())})
				if err != nil {
					return err
				}
				if vc.Rank() == vc.Root() {
					for r := 0; r < vc.Size(); r++ {
						if len(sums[r]) != 1 || sums[r][0] != byte(r) {
							return fmt.Errorf("gather[%d] = %v", r, sums[r])
						}
					}
				}
				acc, err := vc.AllReduce([]byte{1}, func(a, b []byte) []byte {
					return []byte{a[0] + b[0]}
				})
				if err != nil {
					return err
				}
				if int(acc[0]) != vc.Size() {
					return fmt.Errorf("rank %d: allreduce %d, want %d", vc.Rank(), acc[0], vc.Size())
				}
				return vc.Barrier()
			})
		}(e)
	}
	for range eps {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// ---- churn drill (in-process twin of `hypercomm churn`) ----

// drillPayload is the root's round signature: round number, stop flag,
// and a round-determined filler the receivers verify byte-for-byte.
func drillPayload(round int, stop bool) []byte {
	b := make([]byte, 64)
	binary.BigEndian.PutUint32(b, uint32(round))
	if stop {
		b[4] = 1
	}
	for i := 5; i < len(b); i++ {
		b[i] = byte(round*31 + i)
	}
	return b
}

type drillStats struct {
	completed atomic.Int64 // rounds finished (deduplicated)
	vchanged  atomic.Int64 // view-change retries observed
}

func isViewChanged(err error) bool {
	var vce *member.ViewChangedError
	return errors.As(err, &vce)
}

// drillFollower participates in root-signed rounds until the stop round
// arrives: receive the round broadcast, verify it byte-for-byte, echo
// it into the gather. Rounds replayed after a view change (the root
// retries an interrupted round on the new view) are deduplicated.
func drillFollower(s *Session, st *drillStats) error {
	last := -1
	for {
		vc, err := s.Pin()
		if err != nil {
			return err
		}
		data, err := vc.Bcast(nil)
		if isViewChanged(err) {
			st.vchanged.Add(1)
			continue
		}
		if err != nil {
			return err
		}
		if len(data) != 64 {
			return fmt.Errorf("rank %d: short round payload (%d bytes)", vc.Rank(), len(data))
		}
		round := int(binary.BigEndian.Uint32(data))
		stop := data[4] == 1
		if want := drillPayload(round, stop); !bytes.Equal(data, want) {
			return fmt.Errorf("rank %d: round %d payload corrupted", vc.Rank(), round)
		}
		_, err = vc.Gather(data)
		if isViewChanged(err) {
			st.vchanged.Add(1)
			continue
		}
		if err != nil {
			return err
		}
		if round != last {
			st.completed.Add(1)
			last = round
		}
		if stop {
			return nil
		}
	}
}

// drillRoot drives rounds: broadcast the signed payload, gather every
// live rank's echo, verify byte-exact delivery. A view change mid-round
// retries the same round on the new view. It stops once stopNow reports
// true AND two further rounds completed on the then-current view.
func drillRoot(s *Session, st *drillStats, stopNow func() bool) error {
	graceLeft := -1
	for round := 0; ; round++ {
		if graceLeft < 0 && stopNow() {
			graceLeft = 2
		}
		stop := graceLeft == 0
		payload := drillPayload(round, stop)
		err := s.RetryOnViewChange(0, func(vc *ViewComm) error {
			if _, err := vc.Bcast(payload); err != nil {
				return err
			}
			sums, err := vc.Gather(payload)
			if err != nil {
				return err
			}
			for r := 0; r < vc.Size(); r++ {
				if !vc.View().Alive(cube.NodeID(r)) {
					continue
				}
				if !bytes.Equal(sums[r], payload) {
					return fmt.Errorf("round %d: rank %d echoed %d bytes, want the %d-byte signature",
						round, r, len(sums[r]), len(payload))
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		st.completed.Add(1)
		if graceLeft > 0 {
			graceLeft--
		}
		if stop {
			return nil
		}
	}
}

// waitCount waits for an atomic counter to reach at least want.
func waitCount(t *testing.T, c *atomic.Int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (have %d, want %d)", what, c.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestElasticChurn is the in-process churn drill: a 2-cube runs
// root-signed collective rounds while rank 3 crashes, a fresh
// incarnation joins back into the hole, and rank 2 drains gracefully.
// Every round either completes byte-exactly on some epoch or fails with
// a ViewChangedError and is retried on the repaired view; the run ends
// with a verified broadcast over the final (3-member) view.
func TestElasticChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second crash-detection budgets")
	}
	const dim = 2
	eps, addrs := elasticMesh(t, dim)
	var st drillStats
	var churnDone atomic.Bool

	done := make(chan error, 5)
	run := func(e *Elastic, prog func(*Session) error) {
		go func() { done <- e.Run(prog) }()
	}
	run(eps[0], func(s *Session) error {
		return drillRoot(s, &st, churnDone.Load)
	})
	for _, r := range []int{1, 2, 3} {
		run(eps[r], func(s *Session) error { return drillFollower(s, &st) })
	}

	// Phase 1: clean rounds on the full view.
	waitCount(t, &st.completed, 2, "pre-churn rounds")

	// Phase 2: rank 3 crashes mid-traffic; survivors detect, repair,
	// and keep completing rounds on the 3-member view.
	e0 := eps[0].Manager().Epoch()
	eps[3].Crash()
	if !eps[0].Manager().WaitEpochAbove(e0, 20*time.Second) {
		t.Fatal("crash never detected")
	}
	pre := st.completed.Load()
	waitCount(t, &st.completed, pre+2, "post-crash rounds")

	// Phase 3: a fresh incarnation of rank 3 joins through the hole.
	reborn := startElastic(t, dim, 3, true)
	joinAddrs := append([]string(nil), addrs...)
	joinAddrs[3] = ""
	if err := reborn.Join(joinAddrs, 20*time.Second); err != nil {
		t.Fatalf("Join: %v", err)
	}
	run(reborn, func(s *Session) error { return drillFollower(s, &st) })
	pre = st.completed.Load()
	waitCount(t, &st.completed, pre+2, "post-join rounds")

	// Phase 4: rank 2 drains gracefully (Drained, not Dead).
	e2 := eps[0].Manager().Epoch()
	go eps[2].Drain(200 * time.Millisecond)
	if !eps[0].Manager().WaitEpochAbove(e2, 20*time.Second) {
		t.Fatal("drain never observed")
	}
	pre = st.completed.Load()
	waitCount(t, &st.completed, pre+2, "post-drain rounds")

	// Phase 5: stop. The final rounds ARE the post-storm verified
	// broadcast: the root byte-checks every live rank's echo.
	churnDone.Store(true)
	finished := 0
	for finished < 5 {
		select {
		case err := <-done:
			finished++
			// The crashed rank and the drained rank end with shutdown
			// errors by design; survivors must end clean.
			if err != nil && !isExpectedChurnExit(err) {
				t.Fatalf("program exited: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("programs still running (%d/5 done)", finished)
		}
	}

	if st.vchanged.Load() == 0 {
		t.Fatal("no view-change retries observed — the churn never interrupted a collective")
	}
	v := eps[0].Manager().View()
	if !v.Alive(0) || !v.Alive(1) || !v.Alive(3) {
		t.Fatalf("final view %s, want 0,1,3 alive", v)
	}
	if v.Stat[2] != member.Drained {
		t.Fatalf("final view %s, want rank 2 drained", v)
	}
}

// TestElasticGrow is the in-process growth drill: a 2-cube runs
// root-signed collective rounds while rank 4 — beyond the founding
// four — grow-attaches into the live mesh. Every surviving endpoint
// must re-dimension online (no process restarted), and the run ends
// with byte-exact rounds on the 3-cube in which the grown rank's echo
// is verified by the root like any founder's.
func TestElasticGrow(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second growth budgets")
	}
	const dim = 2
	eps, addrs := elasticMesh(t, dim)
	var st drillStats
	var growDone atomic.Bool

	done := make(chan error, 5)
	run := func(e *Elastic, prog func(*Session) error) {
		go func() { done <- e.Run(prog) }()
	}
	run(eps[0], func(s *Session) error {
		return drillRoot(s, &st, growDone.Load)
	})
	for _, r := range []int{1, 2, 3} {
		run(eps[r], func(s *Session) error { return drillFollower(s, &st) })
	}

	// Phase 1: clean rounds on the founding 2-cube.
	waitCount(t, &st.completed, 2, "pre-growth rounds")

	// Phase 2: rank 4 joins mid-traffic. It is born at dim 3 and dials
	// its only live neighbor (rank 0) through the grow-attach handshake;
	// the survivors widen their link sets online.
	joiner := startElastic(t, dim+1, 4, true)
	joinAddrs := make([]string, 1<<uint(dim+1))
	copy(joinAddrs, addrs)
	if err := joiner.Join(joinAddrs, 20*time.Second); err != nil {
		t.Fatalf("Join: %v", err)
	}
	run(joiner, func(s *Session) error { return drillFollower(s, &st) })

	// Every surviving endpoint must reach dim 3 — the epoch-gated
	// cutover means the view (and hence the pinned sessions) flip as a
	// unit, so rounds completing below all include rank 4's echo.
	deadline := time.Now().Add(20 * time.Second)
	for _, e := range eps {
		for e.dimNow() < dim+1 {
			if time.Now().After(deadline) {
				t.Fatalf("rank %d never re-dimensioned (dim %d)", e.Rank(), e.dimNow())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 3: verified rounds on the grown cube. drillRoot byte-checks
	// every live rank's gather echo, which now includes rank 4.
	pre := st.completed.Load()
	waitCount(t, &st.completed, pre+3, "post-growth rounds")

	// Phase 4: stop and collect.
	growDone.Store(true)
	for finished := 0; finished < 5; finished++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("program exited: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("programs still running (%d/5 done)", finished)
		}
	}

	v := eps[0].Manager().View()
	if v.Dim != dim+1 {
		t.Fatalf("final view %s, want a %d-cube", v, dim+1)
	}
	for r := 0; r <= 4; r++ {
		if !v.Alive(cube.NodeID(r)) {
			t.Fatalf("final view %s, want ranks 0..4 alive", v)
		}
	}
	var grown, accepted int64
	for _, e := range eps {
		grown += e.tr.GrowEvents()
		accepted += e.tr.GrowAccepts()
	}
	if grown != int64(len(eps)) {
		t.Fatalf("survivors recorded %d grow events, want %d (one each)", grown, len(eps))
	}
	if accepted == 0 {
		t.Fatal("no survivor accepted a grow-attach handshake")
	}
}

// isExpectedChurnExit accepts the ways a killed or drained rank's
// program legitimately ends: transport shutdown underneath it, or its
// own rank leaving the view.
func isExpectedChurnExit(err error) bool {
	s := err.Error()
	return bytes.Contains([]byte(s), []byte("machine stopped")) ||
		bytes.Contains([]byte(s), []byte("connection lost")) ||
		bytes.Contains([]byte(s), []byte("is not alive in view")) ||
		bytes.Contains([]byte(s), []byte("transport is closed"))
}
