// Package embed measures and constructs graph embeddings into the Boolean
// cube — the context the paper's introduction places itself in ("the
// embedding of complete binary trees is treated in [21, 11, 17, 3, 2]").
//
// An embedding maps the nodes of a guest graph to cube nodes. Its quality
// is measured by
//
//	dilation   — the longest cube path an edge of the guest stretches to,
//	congestion — the maximum number of guest edges routed across one cube
//	             link (dimension-ordered routes),
//	expansion  — host size / guest size.
//
// Constructors are provided for the classical dilation-1 guests: rings and
// multidimensional tori via binary-reflected Gray codes, and the
// double-rooted complete binary tree via internal/tcbt.
package embed

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/cube"
	"repro/internal/tcbt"
)

// Guest is an undirected guest graph: vertices 0..N-1 and an edge list.
type Guest struct {
	Vertices int
	Edges    [][2]int
}

// Embedding maps guest vertices to distinct cube nodes.
type Embedding struct {
	Cube  *cube.Cube
	Guest Guest
	Map   []cube.NodeID // Map[v] = cube node hosting guest vertex v
}

// Validate checks that the map is injective and within the cube.
func (e *Embedding) Validate() error {
	if len(e.Map) != e.Guest.Vertices {
		return fmt.Errorf("embed: map covers %d of %d vertices", len(e.Map), e.Guest.Vertices)
	}
	seen := map[cube.NodeID]int{}
	for v, h := range e.Map {
		if !e.Cube.Contains(h) {
			return fmt.Errorf("embed: vertex %d mapped outside the cube", v)
		}
		if prev, dup := seen[h]; dup {
			return fmt.Errorf("embed: vertices %d and %d share host %d", prev, v, h)
		}
		seen[h] = v
	}
	for _, ed := range e.Guest.Edges {
		for _, v := range ed {
			if v < 0 || v >= e.Guest.Vertices {
				return fmt.Errorf("embed: edge endpoint %d out of range", v)
			}
		}
	}
	return nil
}

// Dilation returns the maximum cube distance spanned by a guest edge.
func (e *Embedding) Dilation() int {
	max := 0
	for _, ed := range e.Guest.Edges {
		if d := e.Cube.Distance(e.Map[ed[0]], e.Map[ed[1]]); d > max {
			max = d
		}
	}
	return max
}

// Congestion returns the maximum number of guest edges whose dimension-
// ordered routes cross a single (undirected) cube link.
func (e *Embedding) Congestion() int {
	load := map[cube.Edge]int{}
	max := 0
	for _, ed := range e.Guest.Edges {
		path := e.Cube.ShortestPath(e.Map[ed[0]], e.Map[ed[1]])
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			if b < a {
				a, b = b, a
			}
			k := cube.Edge{From: a, To: b}
			load[k]++
			if load[k] > max {
				max = load[k]
			}
		}
	}
	return max
}

// Expansion returns host size over guest size.
func (e *Embedding) Expansion() float64 {
	return float64(e.Cube.Nodes()) / float64(e.Guest.Vertices)
}

// Ring embeds the 2^n-vertex ring into the n-cube with dilation 1 via the
// binary-reflected Gray code (the cycle closes because the first and last
// codes are adjacent).
func Ring(n int) *Embedding {
	c := cube.New(n)
	N := c.Nodes()
	g := Guest{Vertices: N}
	m := make([]cube.NodeID, N)
	for v := 0; v < N; v++ {
		g.Edges = append(g.Edges, [2]int{v, (v + 1) % N})
		m[v] = cube.NodeID(bits.GrayCode(uint64(v)))
	}
	return &Embedding{Cube: c, Guest: g, Map: m}
}

// Torus embeds the 2^a x 2^b torus into the (a+b)-cube with dilation 1:
// the product of two Gray-code rings, row bits in the high part.
func Torus(a, b int) *Embedding {
	c := cube.New(a + b)
	rows, cols := 1<<uint(a), 1<<uint(b)
	g := Guest{Vertices: rows * cols}
	m := make([]cube.NodeID, g.Vertices)
	id := func(r, cc int) int { return r*cols + cc }
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			v := id(r, cc)
			m[v] = cube.NodeID(bits.GrayCode(uint64(r)))<<uint(b) |
				cube.NodeID(bits.GrayCode(uint64(cc)))
			g.Edges = append(g.Edges,
				[2]int{v, id(r, (cc+1)%cols)},
				[2]int{v, id((r+1)%rows, cc)})
		}
	}
	return &Embedding{Cube: c, Guest: g, Map: m}
}

// DRCBT embeds the 2^n-vertex double-rooted complete binary tree into the
// n-cube with dilation 1 (the TCBT construction the paper's broadcast
// baseline uses).
func DRCBT(n int) (*Embedding, error) {
	e, err := tcbt.New(n, 0)
	if err != nil {
		return nil, err
	}
	c := cube.New(n)
	g := Guest{Vertices: c.Nodes()}
	m := make([]cube.NodeID, c.Nodes())
	for v := 0; v < c.Nodes(); v++ {
		m[v] = cube.NodeID(v) // identity: the TCBT is a spanning subgraph
		if p, ok := e.Parent(cube.NodeID(v)); ok {
			g.Edges = append(g.Edges, [2]int{v, int(p)})
		}
	}
	return &Embedding{Cube: c, Guest: g, Map: m}, nil
}

// CompleteBinaryTree embeds the (2^n - 1)-vertex complete binary tree into
// the n-cube by pruning one leaf of the DRCBT and contracting the double
// root: vertices are tree positions in level order (1-indexed heap
// layout), and the embedding inherits dilation <= 2 (the single stretched
// edge is the one across the removed second root).
func CompleteBinaryTree(n int) (*Embedding, error) {
	if n < 2 {
		return nil, fmt.Errorf("embed: complete binary tree needs n >= 2")
	}
	d, err := tcbt.New(n, 0)
	if err != nil {
		return nil, err
	}
	t, err := d.Tree()
	if err != nil {
		return nil, err
	}
	c := cube.New(n)
	K := c.Nodes() - 1 // 2^n - 1 vertices
	g := Guest{Vertices: K}
	m := make([]cube.NodeID, K)
	// Heap vertex 1 = R1 (the contracted root), children: C1 and C2.
	// Walk the TCBT assigning heap indices.
	m[0] = d.R1
	type frame struct {
		host cube.NodeID
		heap int
	}
	// The contracted root's children in the heap are C1 and C2.
	stack := []frame{{d.C1, 2}, {d.C2, 3}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m[f.heap-1] = f.host
		g.Edges = append(g.Edges, [2]int{f.heap/2 - 1, f.heap - 1})
		ch := t.Children(f.host)
		for k, cc := range ch {
			stack = append(stack, frame{cc, 2*f.heap + k})
		}
	}
	return &Embedding{Cube: c, Guest: g, Map: m}, nil
}
