package embed

import (
	"testing"
)

func TestRingDilationOne(t *testing.T) {
	for n := 1; n <= 10; n++ {
		e := Ring(n)
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := e.Dilation(); d != 1 {
			t.Errorf("n=%d: ring dilation %d", n, d)
		}
		if x := e.Expansion(); x != 1 {
			t.Errorf("n=%d: ring expansion %f", n, x)
		}
		// Dilation-1 embeddings have congestion <= 2 per undirected link
		// for a ring (each link hosts at most one ring edge each way).
		if c := e.Congestion(); c > 2 {
			t.Errorf("n=%d: ring congestion %d", n, c)
		}
	}
}

func TestTorusDilationOne(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 3}, {3, 3}, {4, 2}} {
		e := Torus(dims[0], dims[1])
		if err := e.Validate(); err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if d := e.Dilation(); d != 1 {
			t.Errorf("%v: torus dilation %d", dims, d)
		}
		if got := e.Guest.Vertices; got != 1<<uint(dims[0]+dims[1]) {
			t.Errorf("%v: %d vertices", dims, got)
		}
		// Each vertex contributes 2 edges (right and down): 2 per vertex.
		if got := len(e.Guest.Edges); got != 2*e.Guest.Vertices {
			t.Errorf("%v: %d edges", dims, got)
		}
	}
}

func TestDRCBTDilationOne(t *testing.T) {
	for n := 2; n <= 9; n++ {
		e, err := DRCBT(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := e.Dilation(); d != 1 {
			t.Errorf("n=%d: DRCBT dilation %d (must be a subgraph)", n, d)
		}
		if got := len(e.Guest.Edges); got != e.Guest.Vertices-1 {
			t.Errorf("n=%d: %d edges for %d vertices", n, got, e.Guest.Vertices)
		}
	}
}

func TestCompleteBinaryTreeDilationTwo(t *testing.T) {
	// The CBT on 2^n - 1 vertices cannot embed with dilation 1 (parity
	// argument); contracting the TCBT's double root gives dilation 2 with
	// exactly one stretched edge.
	for n := 2; n <= 9; n++ {
		e, err := CompleteBinaryTree(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := e.Dilation(); d != 2 {
			t.Errorf("n=%d: CBT dilation %d, want 2", n, d)
		}
		stretched := 0
		for _, ed := range e.Guest.Edges {
			if e.Cube.Distance(e.Map[ed[0]], e.Map[ed[1]]) == 2 {
				stretched++
			}
		}
		if stretched != 1 {
			t.Errorf("n=%d: %d stretched edges, want 1", n, stretched)
		}
		// Heap shape: vertex k's parent is k/2 (1-indexed).
		if len(e.Guest.Edges) != e.Guest.Vertices-1 {
			t.Errorf("n=%d: edge count %d", n, len(e.Guest.Edges))
		}
	}
}

func TestValidateCatchesBadMaps(t *testing.T) {
	e := Ring(3)
	e.Map[0] = e.Map[1]
	if err := e.Validate(); err == nil {
		t.Error("duplicate host accepted")
	}
	e = Ring(3)
	e.Map[0] = 99
	if err := e.Validate(); err == nil {
		t.Error("out-of-cube host accepted")
	}
	e = Ring(3)
	e.Guest.Edges = append(e.Guest.Edges, [2]int{0, 99})
	if err := e.Validate(); err == nil {
		t.Error("bad edge endpoint accepted")
	}
	if _, err := CompleteBinaryTree(1); err == nil {
		t.Error("n=1 CBT accepted")
	}
}
