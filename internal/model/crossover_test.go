package model

import (
	"math"
	"testing"
)

func TestHPCrossoverExistsAndIsMonotone(t *testing.T) {
	// For every small dimension the HP eventually beats the one-port SBT
	// (slope tc vs log N * tc), and the crossover message size grows with
	// the cube size (more pipeline fill to amortize).
	prev := 0.0
	for _, n := range []int{2, 3, 4, 5, 6, 7} {
		m := HPSBTCrossoverM(n, 100, 1)
		if math.IsInf(m, 1) {
			t.Fatalf("n=%d: no crossover found", n)
		}
		p := Params{N: n, M: m * 2, Tau: 100, Tc: 1}
		if !HPBeatsSBT(p) {
			t.Errorf("n=%d: HP does not win at 2x the crossover", n)
		}
		if m > 1 { // m == 1 means HP wins everywhere (n = 2: N-3 = 1)
			p.M = m / 4
			if HPBeatsSBT(p) {
				t.Errorf("n=%d: HP already wins at a quarter of the crossover", n)
			}
		}
		if m <= prev {
			t.Errorf("n=%d: crossover %.0f not larger than previous %.0f", n, m, prev)
		}
		prev = m
	}
}

func TestHPCrossoverScalesWithTau(t *testing.T) {
	// A larger start-up time penalizes the HP's N-3 pipeline-fill steps,
	// pushing the crossover upward.
	small := HPSBTCrossoverM(5, 10, 1)
	large := HPSBTCrossoverM(5, 1000, 1)
	if large <= small {
		t.Errorf("crossover did not grow with tau: %.0f vs %.0f", small, large)
	}
}

func TestHPBeatsTCBTSometimes(t *testing.T) {
	// The paper's remark covers TCBT too: with streaming-sized messages
	// the HP's 1 cycle/packet beats TCBT's 2.
	p := Params{N: 4, M: 1 << 22, Tau: 1, Tc: 1}
	if !HPBeatsTCBT(p) {
		t.Error("HP should beat TCBT for huge messages on a small cube")
	}
	p = Params{N: 10, M: 16, Tau: 1000, Tc: 1}
	if HPBeatsTCBT(p) {
		t.Error("HP should lose to TCBT for tiny messages on a big cube")
	}
}

func TestCrossoverAgreesWithSimulatedShape(t *testing.T) {
	// Spot-check against the T formulas directly at the boundary: the two
	// optima should be within 1% of each other at M = crossover.
	n := 5
	m := HPSBTCrossoverM(n, 100, 1)
	p := Params{N: n, M: m, Tau: 100, Tc: 1}
	hp := BroadcastTmin(HP, OneSendAndRecv, p)
	sbt := BroadcastTmin(SBT, OneSendAndRecv, p)
	if rel := math.Abs(hp-sbt) / sbt; rel > 0.01 {
		t.Errorf("at crossover M=%.0f: HP %.1f vs SBT %.1f (rel %.3f)", m, hp, sbt, rel)
	}
}
