package model

import "testing"

// The model functions treat an unknown algorithm/port-model combination as
// a programming error and panic; verify the guard rails fire rather than
// silently returning zeros.
func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestModelPanicsOnUnsupportedRows(t *testing.T) {
	p := Params{N: 5, M: 64, B: 8, Tau: 1, Tc: 1}
	expectPanic(t, "BroadcastTime(BST)", func() { BroadcastTime(BST, AllPorts, p) })
	expectPanic(t, "BroadcastTime(HP all ports)", func() { BroadcastTime(HP, AllPorts, p) })
	expectPanic(t, "BroadcastBopt(BST)", func() { BroadcastBopt(BST, AllPorts, p) })
	expectPanic(t, "BroadcastTmin(BST)", func() { BroadcastTmin(BST, AllPorts, p) })
	expectPanic(t, "PropagationDelay(BST)", func() { PropagationDelay(BST, AllPorts, 5) })
	expectPanic(t, "CyclesPerPacket(BST)", func() { CyclesPerPacket(BST, AllPorts, 5) })
	expectPanic(t, "BroadcastRatio(HP)", func() { BroadcastRatio(HP, OneSendOrRecv, RegimeOnePacket, 5) })
	expectPanic(t, "ScatterTmin(HP)", func() { ScatterTmin(HP, AllPorts, p) })
	expectPanic(t, "ScatterTime(TCBT)", func() { ScatterTime(TCBT, AllPorts, p) })
}
