package model

import "math"

// The paper (§3.4) remarks: "Interestingly, broadcasting through a
// Hamiltonian Path on a hypercube may be faster than broadcasting based on
// the SBT or even the TCBT, depending on the values of M, t_c, tau and N."
// The functions below quantify that remark: the HP pays N-3 extra
// pipeline-fill steps but only 1 cycle per packet, while the one-port SBT
// pays log N cycles per packet — so for large enough M/tau the path wins.

// HPBeatsSBT reports whether the Hamiltonian-path broadcast is faster than
// the one-port SBT broadcast at optimal packet sizes under the given
// parameters (full-duplex one-port for both).
func HPBeatsSBT(p Params) bool {
	return BroadcastTmin(HP, OneSendAndRecv, p) < BroadcastTmin(SBT, OneSendAndRecv, p)
}

// HPSBTCrossoverM returns the message size M* above which the
// Hamiltonian-path broadcast beats the one-port SBT broadcast at optimal
// packet sizes (both full duplex), for the given n, tau and t_c. Returns
// +Inf if the HP never wins below the search cap (2^40 elements).
//
// Derivation sketch: T_HP = (sqrt(M tc) + sqrt((N-3) tau))^2 grows like
// M tc, while T_SBT = log N (M tc + tau) grows like log N * M tc; for
// M tc >> tau both are linear in M with slopes tc and log N tc, so the
// HP always wins eventually (log N >= 2) — the crossover is where the
// HP's huge pipeline-fill term (N-3) tau is amortized.
func HPSBTCrossoverM(n int, tau, tc float64) float64 {
	lo, hi := 1.0, math.Pow(2, 40)
	p := Params{N: n, Tau: tau, Tc: tc}
	at := func(m float64) bool {
		p.M = m
		return HPBeatsSBT(p)
	}
	if at(lo) {
		return lo
	}
	if !at(hi) {
		return math.Inf(1)
	}
	for i := 0; i < 200 && hi/lo > 1.0001; i++ {
		mid := math.Sqrt(lo * hi)
		if at(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// HPBeatsTCBT reports whether the HP broadcast beats the one-port TCBT
// broadcast at optimal packet sizes (full duplex).
func HPBeatsTCBT(p Params) bool {
	return BroadcastTmin(HP, OneSendAndRecv, p) < BroadcastTmin(TCBT, OneSendAndRecv, p)
}
