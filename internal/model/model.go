// Package model implements the closed-form communication-complexity
// estimates of Ho & Johnsson (ICPP 1986): propagation delays (Table 1),
// steady-state cycles per distinct packet (Table 2), broadcast complexity
// T / B_opt / T_min for every algorithm and port model (Table 3), the
// complexity ratios relative to MSBT routing (Table 4), and the
// personalized-communication (scatter) complexities (Table 6).
//
// Conventions follow the paper: a packet of B elements costs tau + B*t_c
// on one link; M is the number of elements each destination receives;
// n = log2 N is the cube dimension. Times are in whatever unit tau and
// t_c are expressed in.
package model

import (
	"fmt"
	"math"
)

// PortModel is the per-node communication capability assumed by the
// analysis.
type PortModel int

const (
	// OneSendOrRecv: a node performs at most one send OR one receive per
	// cycle (half-duplex single port).
	OneSendOrRecv PortModel = iota
	// OneSendAndRecv: one send concurrently with one receive (full-duplex
	// single port). This is the paper's "1 s and r" column and the closest
	// match to the Intel iPSC behaviour with overlap.
	OneSendAndRecv
	// AllPorts: concurrent communication on all log N ports.
	AllPorts
)

func (p PortModel) String() string {
	switch p {
	case OneSendOrRecv:
		return "1 s or r"
	case OneSendAndRecv:
		return "1 s and r"
	case AllPorts:
		return "all ports"
	}
	return fmt.Sprintf("PortModel(%d)", int(p))
}

// PortModels lists the three models in the paper's column order.
var PortModels = []PortModel{OneSendOrRecv, OneSendAndRecv, AllPorts}

// Algorithm identifies a routing structure.
type Algorithm int

const (
	HP   Algorithm = iota // Hamiltonian path (Gray code)
	SBT                   // spanning binomial tree
	TCBT                  // two-rooted complete binary tree
	MSBT                  // multiple spanning binomial trees
	BST                   // balanced spanning tree
)

func (a Algorithm) String() string {
	switch a {
	case HP:
		return "HP"
	case SBT:
		return "SBT"
	case TCBT:
		return "TCBT"
	case MSBT:
		return "MSBT"
	case BST:
		return "BST"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Params carries the cost-model parameters.
type Params struct {
	N   int     // cube dimension n (so the machine has 2^n nodes)
	M   float64 // elements per destination
	B   float64 // maximum packet size, in elements
	Tau float64 // start-up time per packet
	Tc  float64 // transfer time per element
}

// Nodes returns 2^n.
func (p Params) Nodes() float64 { return math.Pow(2, float64(p.N)) }

// PropagationDelay returns the Table 1 entry: the number of routing steps
// for the first packet to reach every node.
func PropagationDelay(a Algorithm, pm PortModel, n int) int {
	N := 1 << uint(n)
	switch a {
	case HP:
		return N - 1
	case SBT:
		return n
	case TCBT:
		if pm == AllPorts {
			return n
		}
		return 2*n - 2
	case MSBT:
		switch pm {
		case OneSendOrRecv:
			return 3*n - 1
		case OneSendAndRecv:
			return 2 * n
		default:
			return n + 1
		}
	}
	panic("model: no propagation delay for " + a.String())
}

// CyclesPerPacket returns the Table 2 entry: the steady-state number of
// routing cycles consumed per distinct broadcast packet.
func CyclesPerPacket(a Algorithm, pm PortModel, n int) float64 {
	switch a {
	case HP:
		if pm == OneSendOrRecv {
			return 2
		}
		return 1
	case SBT:
		if pm == AllPorts {
			return 1
		}
		return float64(n)
	case TCBT:
		switch pm {
		case OneSendOrRecv:
			return 3
		case OneSendAndRecv:
			return 2
		default:
			return 1
		}
	case MSBT:
		switch pm {
		case OneSendOrRecv:
			return 2
		case OneSendAndRecv:
			return 1
		default:
			return 1 / float64(n)
		}
	}
	panic("model: no cycles-per-packet for " + a.String())
}

// packets returns ceil(M/B).
func packets(M, B float64) float64 { return math.Ceil(M / B) }

// BroadcastTime returns the Table 3 T column: the time to broadcast M
// elements with maximum packet size B.
func BroadcastTime(a Algorithm, pm PortModel, p Params) float64 {
	n := float64(p.N)
	N := p.Nodes()
	cost := p.Tau + p.B*p.Tc
	q := packets(p.M, p.B)
	switch a {
	case HP:
		switch pm {
		case OneSendOrRecv:
			return (2*q + N - 3) * cost
		case OneSendAndRecv:
			return (q + N - 3) * cost
		}
	case SBT:
		switch pm {
		case OneSendOrRecv, OneSendAndRecv:
			// The SBT algorithm halves the problem log N times; duplex
			// capability does not help because each node talks on one port
			// at a time anyway.
			return q * n * cost
		case AllPorts:
			return (q + n - 1) * cost
		}
	case TCBT:
		switch pm {
		case OneSendOrRecv:
			return (3*q + 2*n - 5) * cost
		case OneSendAndRecv:
			return 2 * (q + n - 2) * cost
		case AllPorts:
			return (q + n - 1) * cost
		}
	case MSBT:
		switch pm {
		case OneSendOrRecv:
			return (2*q + n - 1) * cost
		case OneSendAndRecv:
			return (q + n) * cost
		case AllPorts:
			return (math.Ceil(p.M/(p.B*n)) + n) * cost
		}
	}
	panic("model: no broadcast time for " + a.String() + "/" + pm.String())
}

// BroadcastBopt returns the Table 3 B_opt column: the packet size
// minimizing BroadcastTime.
func BroadcastBopt(a Algorithm, pm PortModel, p Params) float64 {
	n := float64(p.N)
	N := p.Nodes()
	switch a {
	case HP:
		switch pm {
		case OneSendOrRecv:
			return math.Sqrt(2 * p.M * p.Tau / ((N - 3) * p.Tc))
		case OneSendAndRecv:
			return math.Sqrt(p.M * p.Tau / ((N - 3) * p.Tc))
		}
	case SBT:
		switch pm {
		case OneSendOrRecv, OneSendAndRecv:
			return p.M
		case AllPorts:
			return math.Sqrt(p.M * p.Tau / ((n - 1) * p.Tc))
		}
	case TCBT:
		switch pm {
		case OneSendOrRecv:
			return math.Sqrt(3 * p.M * p.Tau / ((2*n - 5) * p.Tc))
		case OneSendAndRecv:
			return math.Sqrt(p.M * p.Tau / ((n - 2) * p.Tc))
		case AllPorts:
			return math.Sqrt(p.M * p.Tau / (p.Tc * (n - 1)))
		}
	case MSBT:
		switch pm {
		case OneSendOrRecv:
			return math.Sqrt(2 * p.M * p.Tau / (p.Tc * (n - 1)))
		case OneSendAndRecv:
			return math.Sqrt(p.M * p.Tau / (p.Tc * n))
		case AllPorts:
			return math.Sqrt(p.M*p.Tau/p.Tc) / n
		}
	}
	panic("model: no B_opt for " + a.String() + "/" + pm.String())
}

// BroadcastTmin returns the Table 3 T_min column: the broadcast time at
// the optimal packet size.
func BroadcastTmin(a Algorithm, pm PortModel, p Params) float64 {
	n := float64(p.N)
	N := p.Nodes()
	sq := func(x float64) float64 { return x * x }
	switch a {
	case HP:
		switch pm {
		case OneSendOrRecv:
			return sq(math.Sqrt(2*p.M*p.Tc) + math.Sqrt((N-3)*p.Tau))
		case OneSendAndRecv:
			return sq(math.Sqrt(p.M*p.Tc) + math.Sqrt((N-3)*p.Tau))
		}
	case SBT:
		switch pm {
		case OneSendOrRecv, OneSendAndRecv:
			return n * (p.M*p.Tc + p.Tau)
		case AllPorts:
			return sq(math.Sqrt(p.M*p.Tc) + math.Sqrt(p.Tau*(n-1)))
		}
	case TCBT:
		switch pm {
		case OneSendOrRecv:
			return sq(math.Sqrt(3*p.M*p.Tc) + math.Sqrt(p.Tau*(2*n-5)))
		case OneSendAndRecv:
			return 2 * sq(math.Sqrt(p.M*p.Tc)+math.Sqrt(p.Tau*(n-2)))
		case AllPorts:
			return sq(math.Sqrt(p.M*p.Tc) + math.Sqrt(p.Tau*(n-1)))
		}
	case MSBT:
		switch pm {
		case OneSendOrRecv:
			return sq(math.Sqrt(2*p.M*p.Tc) + math.Sqrt(p.Tau*(n-1)))
		case OneSendAndRecv:
			return sq(math.Sqrt(p.M*p.Tc) + math.Sqrt(p.Tau*n))
		case AllPorts:
			return sq(math.Sqrt(p.M*p.Tc/n) + math.Sqrt(p.Tau*n))
		}
	}
	panic("model: no T_min for " + a.String() + "/" + pm.String())
}

// Regime selects a column of Table 4.
type Regime int

const (
	// RegimeOnePacket: M <= B, a single packet broadcast.
	RegimeOnePacket Regime = iota
	// RegimeManyPackets: M/B >> log N, bandwidth-bound streaming.
	RegimeManyPackets
	// RegimeStartupBound: B = B_opt and tau*log N >> M*t_c.
	RegimeStartupBound
	// RegimeTransferBound: B = B_opt and tau*log N << M*t_c.
	RegimeTransferBound
)

func (r Regime) String() string {
	switch r {
	case RegimeOnePacket:
		return "one packet"
	case RegimeManyPackets:
		return "M/B >> log N"
	case RegimeStartupBound:
		return "B=Bopt, tau*logN >> M*tc"
	case RegimeTransferBound:
		return "B=Bopt, tau*logN << M*tc"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// Regimes lists the four Table 4 columns in order.
var Regimes = []Regime{RegimeOnePacket, RegimeManyPackets, RegimeStartupBound, RegimeTransferBound}

// BroadcastRatio returns the Table 4 entry: the asymptotic ratio of the
// broadcast time of algorithm a to that of the MSBT under the same port
// model in the given regime. Defined for a in {SBT, TCBT}. For AllPorts
// the SBT and TCBT rows coincide (the paper's final row). The paper's
// footnote applies to (AllPorts, RegimeTransferBound): the entry assumes
// tau*log^2 N << M*t_c.
func BroadcastRatio(a Algorithm, pm PortModel, r Regime, n int) float64 {
	ln := float64(n)
	switch pm {
	case OneSendOrRecv:
		if a == SBT {
			switch r {
			case RegimeOnePacket:
				return ln / (ln + 1)
			case RegimeManyPackets, RegimeTransferBound:
				return ln / 2
			case RegimeStartupBound:
				return 1
			}
		}
		if a == TCBT {
			switch r {
			case RegimeOnePacket:
				return (2*ln - 2) / (ln + 1)
			case RegimeManyPackets, RegimeTransferBound:
				return 1.5
			case RegimeStartupBound:
				return 2
			}
		}
	case OneSendAndRecv:
		if a == SBT {
			switch r {
			case RegimeOnePacket:
				return ln / (ln + 1)
			case RegimeManyPackets, RegimeTransferBound:
				return ln
			case RegimeStartupBound:
				return 1
			}
		}
		if a == TCBT {
			switch r {
			case RegimeOnePacket:
				return (2*ln - 2) / (ln + 1)
			case RegimeManyPackets, RegimeTransferBound, RegimeStartupBound:
				return 2
			}
		}
	case AllPorts:
		// SBT and TCBT behave identically relative to the MSBT.
		switch r {
		case RegimeOnePacket:
			return ln / (ln + 1)
		case RegimeManyPackets, RegimeTransferBound:
			return ln
		case RegimeStartupBound:
			return 1
		}
	}
	panic("model: no ratio for " + a.String() + "/" + pm.String())
}

// ScatterTmin returns the Table 6 entry: the time for one-to-all
// personalized communication at the optimal (sufficiently large) packet
// size. The TCBT one-port and BST one-port rows are the paper's upper
// bounds. Only single-port ("1 port", which matches OneSendAndRecv in the
// paper's scatter analysis) and AllPorts are tabulated; OneSendOrRecv maps
// to the one-port rows.
func ScatterTmin(a Algorithm, pm PortModel, p Params) float64 {
	n := float64(p.N)
	N := p.Nodes()
	onePort := pm != AllPorts
	switch a {
	case SBT:
		if onePort {
			return (N-1)*p.M*p.Tc + n*p.Tau
		}
		return N/2*p.M*p.Tc + n*p.Tau
	case TCBT:
		if onePort {
			return (2*N-2*n-1)*p.M*p.Tc + (2*n-2)*p.Tau
		}
		return (0.75*N-1)*p.M*p.Tc + n*p.Tau
	case BST:
		if onePort {
			return N*(1+2*math.Log2(n)/n)*p.M*p.Tc + (2*n-2)*p.Tau
		}
		return (N-1)/n*p.M*p.Tc + n*p.Tau
	}
	panic("model: no scatter T_min for " + a.String())
}

// ScatterTime returns the time for one-to-all personalized communication
// with an explicit maximum packet size B (paper §4.2). These are the
// expressions the level-by-level and cyclic routing analyses produce;
// they interpolate between the B <= M streaming regime and the large-B
// start-up-bound regime of Table 6.
func ScatterTime(a Algorithm, pm PortModel, p Params) float64 {
	n := float64(p.N)
	N := p.Nodes()
	onePort := pm != AllPorts
	switch a {
	case SBT:
		if onePort {
			if p.B <= p.M {
				// T = (NM/B - 1)(B t_c + tau)
				return (N*p.M/p.B - 1) * (p.B*p.Tc + p.Tau)
			}
			// T = (N-1) M t_c + tau (NM/B + log ceil(B/M) - 1)
			return (N-1)*p.M*p.Tc + p.Tau*(N*p.M/p.B+math.Log2(math.Ceil(p.B/p.M))-1)
		}
		// All ports, level-by-level (Lemma 4.2): bounded below by the
		// root's transfer of half the data.
		if p.B >= binom(p.N-1, (p.N-1)/2)*p.M {
			return N/2*p.M*p.Tc + n*p.Tau
		}
		return (N*p.M/(2*p.B))*(p.Tau+p.B*p.Tc) + n*p.Tau
	case BST:
		if onePort {
			if p.B >= N/n*p.M {
				// Root does one send per subtree; the last message then
				// traverses up to log N - 2 further links.
				return (2*n-2)*p.Tau + N*(1+2*math.Log2(n)/n)*p.M*p.Tc
			}
			// Cyclic service of the subtrees: T ~ ((N-1)M/B)(tau + B t_c).
			return (N - 1) * p.M / p.B * (p.Tau + p.B*p.Tc)
		}
		if p.B <= p.M {
			return (N - 1) * p.M / (p.B * n) * (p.Tau + p.B*p.Tc)
		}
		// Level-by-level over all ports.
		return n*p.Tau + (N-1)/n*p.M*p.Tc
	}
	panic("model: no scatter time for " + a.String())
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// SpeedupMSBToverSBT returns the predicted broadcast speedup of MSBT over
// SBT for the given parameters and port model — the quantity Figure 7
// plots (measured ~ log N on the iPSC).
func SpeedupMSBToverSBT(pm PortModel, p Params) float64 {
	return BroadcastTime(SBT, pm, p) / BroadcastTime(MSBT, pm, p)
}
