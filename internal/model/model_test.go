package model

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestTable1Golden(t *testing.T) {
	// Paper Table 1 for symbolic n, checked at several dimensions.
	for _, n := range []int{3, 5, 7, 10} {
		N := 1 << uint(n)
		cases := []struct {
			a    Algorithm
			pm   PortModel
			want int
		}{
			{HP, OneSendOrRecv, N - 1}, {HP, OneSendAndRecv, N - 1}, {HP, AllPorts, N - 1},
			{SBT, OneSendOrRecv, n}, {SBT, OneSendAndRecv, n}, {SBT, AllPorts, n},
			{TCBT, OneSendOrRecv, 2*n - 2}, {TCBT, OneSendAndRecv, 2*n - 2}, {TCBT, AllPorts, n},
			{MSBT, OneSendOrRecv, 3*n - 1}, {MSBT, OneSendAndRecv, 2 * n}, {MSBT, AllPorts, n + 1},
		}
		for _, c := range cases {
			if got := PropagationDelay(c.a, c.pm, n); got != c.want {
				t.Errorf("n=%d %v/%v: delay %d, want %d", n, c.a, c.pm, got, c.want)
			}
		}
	}
}

func TestTable2Golden(t *testing.T) {
	for _, n := range []int{3, 5, 7, 10} {
		cases := []struct {
			a    Algorithm
			pm   PortModel
			want float64
		}{
			{HP, OneSendOrRecv, 2}, {HP, OneSendAndRecv, 1}, {HP, AllPorts, 1},
			{SBT, OneSendOrRecv, float64(n)}, {SBT, OneSendAndRecv, float64(n)}, {SBT, AllPorts, 1},
			{TCBT, OneSendOrRecv, 3}, {TCBT, OneSendAndRecv, 2}, {TCBT, AllPorts, 1},
			{MSBT, OneSendOrRecv, 2}, {MSBT, OneSendAndRecv, 1}, {MSBT, AllPorts, 1 / float64(n)},
		}
		for _, c := range cases {
			if got := CyclesPerPacket(c.a, c.pm, n); !almostEq(got, c.want) {
				t.Errorf("n=%d %v/%v: cycles %f, want %f", n, c.a, c.pm, got, c.want)
			}
		}
	}
}

func TestBroadcastTimeMatchesFormulas(t *testing.T) {
	p := Params{N: 6, M: 1024, B: 64, Tau: 100, Tc: 1}
	n, N := 6.0, 64.0
	q := math.Ceil(p.M / p.B)
	cost := p.Tau + p.B*p.Tc
	cases := []struct {
		a    Algorithm
		pm   PortModel
		want float64
	}{
		{HP, OneSendOrRecv, (2*q + N - 3) * cost},
		{HP, OneSendAndRecv, (q + N - 3) * cost},
		{SBT, OneSendOrRecv, q * n * cost},
		{SBT, AllPorts, (q + n - 1) * cost},
		{TCBT, OneSendOrRecv, (3*q + 2*n - 5) * cost},
		{TCBT, OneSendAndRecv, 2 * (q + n - 2) * cost},
		{TCBT, AllPorts, (q + n - 1) * cost},
		{MSBT, OneSendOrRecv, (2*q + n - 1) * cost},
		{MSBT, OneSendAndRecv, (q + n) * cost},
		{MSBT, AllPorts, (math.Ceil(p.M/(p.B*n)) + n) * cost},
	}
	for _, c := range cases {
		if got := BroadcastTime(c.a, c.pm, p); !almostEq(got, c.want) {
			t.Errorf("%v/%v: T = %f, want %f", c.a, c.pm, got, c.want)
		}
	}
}

func TestBoptMinimizesBroadcastTime(t *testing.T) {
	// T(B_opt) must be no worse than T at nearby packet sizes, for every
	// algorithm and port model with a nontrivial optimum. (The closed
	// forms ignore the ceiling; allow 5% slack.)
	base := Params{N: 8, M: 4096, Tau: 500, Tc: 1}
	type ap struct {
		a  Algorithm
		pm PortModel
	}
	for _, c := range []ap{
		{HP, OneSendOrRecv}, {HP, OneSendAndRecv},
		{SBT, AllPorts},
		{TCBT, OneSendOrRecv}, {TCBT, OneSendAndRecv}, {TCBT, AllPorts},
		{MSBT, OneSendOrRecv}, {MSBT, OneSendAndRecv}, {MSBT, AllPorts},
	} {
		p := base
		p.B = BroadcastBopt(c.a, c.pm, p)
		if p.B <= 0 || math.IsNaN(p.B) {
			t.Errorf("%v/%v: bad B_opt %f", c.a, c.pm, p.B)
			continue
		}
		opt := BroadcastTime(c.a, c.pm, p)
		for _, factor := range []float64{0.25, 0.5, 2, 4} {
			q := base
			q.B = p.B * factor
			if got := BroadcastTime(c.a, c.pm, q); got < opt*0.95 {
				t.Errorf("%v/%v: T(%f*Bopt) = %f < T(Bopt) = %f", c.a, c.pm, factor, got, opt)
			}
		}
	}
}

func TestTminAtBopt(t *testing.T) {
	// T_min should approximate T(B_opt) up to ceiling effects: within 10%.
	base := Params{N: 8, M: 4096, Tau: 500, Tc: 1}
	for _, a := range []Algorithm{HP, SBT, TCBT, MSBT} {
		for _, pm := range PortModels {
			if a == HP && pm == AllPorts {
				continue // extra ports do not help a path; no Table 3 row
			}
			p := base
			p.B = BroadcastBopt(a, pm, p)
			tm := BroadcastTmin(a, pm, p)
			tb := BroadcastTime(a, pm, p)
			if tm <= 0 || tb <= 0 {
				t.Errorf("%v/%v: nonpositive time", a, pm)
				continue
			}
			if r := tb / tm; r < 0.90 || r > 1.15 {
				t.Errorf("%v/%v: T(Bopt)/Tmin = %f", a, pm, r)
			}
		}
	}
}

func TestTable4Golden(t *testing.T) {
	n := 10
	ln := float64(n)
	cases := []struct {
		a    Algorithm
		pm   PortModel
		r    Regime
		want float64
	}{
		{SBT, OneSendOrRecv, RegimeOnePacket, ln / (ln + 1)},
		{SBT, OneSendOrRecv, RegimeManyPackets, ln / 2},
		{SBT, OneSendOrRecv, RegimeStartupBound, 1},
		{SBT, OneSendOrRecv, RegimeTransferBound, ln / 2},
		{TCBT, OneSendOrRecv, RegimeOnePacket, (2*ln - 2) / (ln + 1)},
		{TCBT, OneSendOrRecv, RegimeManyPackets, 1.5},
		{TCBT, OneSendOrRecv, RegimeStartupBound, 2},
		{TCBT, OneSendOrRecv, RegimeTransferBound, 1.5},
		{SBT, OneSendAndRecv, RegimeManyPackets, ln},
		{TCBT, OneSendAndRecv, RegimeManyPackets, 2},
		{SBT, AllPorts, RegimeManyPackets, ln},
		{TCBT, AllPorts, RegimeManyPackets, ln},
		{SBT, AllPorts, RegimeStartupBound, 1},
	}
	for _, c := range cases {
		if got := BroadcastRatio(c.a, c.pm, c.r, n); !almostEq(got, c.want) {
			t.Errorf("%v/%v/%v: ratio %f, want %f", c.a, c.pm, c.r, got, c.want)
		}
	}
}

func TestRatiosConsistentWithTimes(t *testing.T) {
	// In the bandwidth-bound streaming regime (M/B >> log N), the closed-
	// form ratio must match the ratio of the T formulas.
	p := Params{N: 10, M: 1 << 20, B: 1, Tau: 0.0, Tc: 1}
	for _, pm := range PortModels {
		for _, a := range []Algorithm{SBT, TCBT} {
			want := BroadcastRatio(a, pm, RegimeManyPackets, p.N)
			got := BroadcastTime(a, pm, p) / BroadcastTime(MSBT, pm, p)
			if math.Abs(got-want)/want > 0.02 {
				t.Errorf("%v/%v: time ratio %f, table %f", a, pm, got, want)
			}
		}
	}
}

func TestTable6Golden(t *testing.T) {
	p := Params{N: 7, M: 16, Tau: 100, Tc: 1}
	n := 7.0
	N := 128.0
	cases := []struct {
		a    Algorithm
		pm   PortModel
		want float64
	}{
		{SBT, OneSendAndRecv, (N-1)*p.M*p.Tc + n*p.Tau},
		{SBT, AllPorts, N/2*p.M*p.Tc + n*p.Tau},
		{TCBT, OneSendAndRecv, (2*N-2*n-1)*p.M*p.Tc + (2*n-2)*p.Tau},
		{TCBT, AllPorts, (0.75*N-1)*p.M*p.Tc + n*p.Tau},
		{BST, OneSendAndRecv, N*(1+2*math.Log2(n)/n)*p.M*p.Tc + (2*n-2)*p.Tau},
		{BST, AllPorts, (N-1)/n*p.M*p.Tc + n*p.Tau},
	}
	for _, c := range cases {
		if got := ScatterTmin(c.a, c.pm, p); !almostEq(got, c.want) {
			t.Errorf("%v/%v: scatter Tmin %f, want %f", c.a, c.pm, got, c.want)
		}
	}
}

func TestScatterHeadline(t *testing.T) {
	// The paper's headline: with all-port communication the BST beats the
	// SBT by ~ (1/2) log N in scatter.
	for _, n := range []int{8, 10, 12, 14} {
		p := Params{N: n, M: 64, Tau: 1, Tc: 1}
		speedup := ScatterTmin(SBT, AllPorts, p) / ScatterTmin(BST, AllPorts, p)
		want := float64(n) / 2
		if speedup < want*0.8 || speedup > want*1.2 {
			t.Errorf("n=%d: BST scatter speedup %f, want ~%f", n, speedup, want)
		}
	}
}

func TestScatterTimeRegimes(t *testing.T) {
	p := Params{N: 8, M: 32, Tau: 50, Tc: 1}
	// One-port SBT and BST coincide for B <= M (paper §4.3).
	p.B = 16
	sbt := ScatterTime(SBT, OneSendAndRecv, p)
	bst := ScatterTime(BST, OneSendAndRecv, p)
	if math.Abs(sbt-bst)/sbt > 0.05 {
		t.Errorf("one-port small-B scatter should coincide: SBT %f BST %f", sbt, bst)
	}
	// All-port BST at B = M: T ~ (N-1)/n (tau + M tc).
	p.B = p.M
	got := ScatterTime(BST, AllPorts, p)
	want := (256.0 - 1) / 8 * (p.Tau + p.M*p.Tc)
	if !almostEq(got, want) {
		t.Errorf("BST all-port B=M: %f want %f", got, want)
	}
	// Larger packets reduce one-port BST time toward the Table 6 bound.
	small := ScatterTime(BST, OneSendAndRecv, Params{N: 8, M: 32, B: 32, Tau: 50, Tc: 1})
	large := ScatterTime(BST, OneSendAndRecv, Params{N: 8, M: 32, B: 32 * 32, Tau: 50, Tc: 1})
	if large >= small {
		t.Errorf("larger packets should reduce one-port BST scatter: %f -> %f", small, large)
	}
}

func TestSpeedupMSBToverSBTShape(t *testing.T) {
	// Figure 7's shape: with the iPSC-like setup (one-port, B fixed at the
	// internal packet size, M/B >> log N), the speedup grows like ~ log N / 2
	// under half-duplex and ~ log N under full-duplex.
	for _, n := range []int{4, 5, 6} {
		p := Params{N: n, M: 60 * 1024, B: 1024, Tau: 1000, Tc: 1}
		fd := SpeedupMSBToverSBT(OneSendAndRecv, p)
		if want := float64(n); math.Abs(fd-want)/want > 0.15 {
			t.Errorf("n=%d: full-duplex speedup %f, want ~%f", n, fd, want)
		}
		hd := SpeedupMSBToverSBT(OneSendOrRecv, p)
		if want := float64(n) / 2; math.Abs(hd-want)/want > 0.2 {
			t.Errorf("n=%d: half-duplex speedup %f, want ~%f", n, hd, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if HP.String() != "HP" || BST.String() != "BST" {
		t.Error("Algorithm strings")
	}
	if OneSendOrRecv.String() != "1 s or r" || AllPorts.String() != "all ports" {
		t.Error("PortModel strings")
	}
	if RegimeOnePacket.String() == "" || RegimeTransferBound.String() == "" {
		t.Error("Regime strings")
	}
	if Algorithm(99).String() == "" || PortModel(99).String() == "" || Regime(99).String() == "" {
		t.Error("unknown enums must still print")
	}
}
