package model

import "testing"

func TestMSBTNearOptimalEverywhere(t *testing.T) {
	// Table 4's first column: in the one-packet regime the SBT beats the
	// MSBT by the small factor log N / (log N + 1); everywhere else the
	// MSBT wins. So the MSBT is always within (n+1)/n of the best.
	for _, pm := range PortModels {
		for _, n := range []int{4, 6, 8, 10} {
			for _, m := range []float64{1, 64, 4096, 1 << 20} {
				p := Params{N: n, M: m, Tau: 100, Tc: 1}
				_, tBest := BestBroadcast(pm, p)
				msbt := BroadcastTmin(MSBT, pm, p)
				if bound := tBest * float64(n+1) / float64(n) * 1.01; msbt > bound {
					t.Errorf("%v n=%d M=%.0f: MSBT %.1f above bound %.1f",
						pm, n, m, msbt, bound)
				}
			}
		}
	}
}

func TestMSBTWinsStreaming(t *testing.T) {
	// For messages much larger than tau the MSBT strictly wins under
	// every port model.
	for _, pm := range PortModels {
		for _, n := range []int{4, 6, 8, 10} {
			p := Params{N: n, M: 1 << 20, Tau: 100, Tc: 1}
			if w, _ := BestBroadcast(pm, p); w != MSBT {
				t.Errorf("%v n=%d: streaming winner %v, want MSBT", pm, n, w)
			}
		}
	}
}

func TestBSTWinsAllPortScatter(t *testing.T) {
	for _, n := range []int{5, 7, 10} {
		p := Params{N: n, M: 64, Tau: 10, Tc: 1}
		w, _ := BestScatter(AllPorts, p)
		if w != BST {
			t.Errorf("n=%d: all-port scatter winner %v, want BST", n, w)
		}
	}
}

func TestSBTWinsOnePortScatter(t *testing.T) {
	// One port at a time: the SBT's log N start-ups beat the BST's
	// 2 log N - 2 and the TCBT's bound (§4.3).
	p := Params{N: 8, M: 64, Tau: 1000, Tc: 1}
	w, _ := BestScatter(OneSendAndRecv, p)
	if w != SBT {
		t.Errorf("one-port scatter winner %v, want SBT", w)
	}
}

func TestWinnerMapBandsAreContiguous(t *testing.T) {
	bands := BroadcastWinnerMap(OneSendAndRecv, 6, 100, 1, 1, 1<<20, 2)
	if len(bands) == 0 {
		t.Fatal("no bands")
	}
	for i := 1; i < len(bands); i++ {
		if bands[i].Winner == bands[i-1].Winner {
			t.Errorf("adjacent bands share winner %v", bands[i].Winner)
		}
		if bands[i].FromM <= bands[i-1].ToM {
			t.Errorf("bands overlap: %v then %v", bands[i-1], bands[i])
		}
	}
	// Under duplex the map has exactly two bands: the SBT's slight
	// one-packet edge (log N vs log N + 1 start-ups), then MSBT forever.
	if len(bands) != 2 || bands[0].Winner != SBT || bands[1].Winner != MSBT {
		t.Errorf("expected [SBT, MSBT] bands, got %v", bands)
	}
}

func TestWinnerMapWithoutMSBTShowsHPCrossover(t *testing.T) {
	// Restricting to the pre-MSBT world (HP vs SBT vs TCBT) recovers the
	// §3.4 remark: the SBT wins small messages, the HP wins huge ones.
	old := BroadcastAlgorithms
	BroadcastAlgorithms = []Algorithm{HP, SBT, TCBT}
	defer func() { BroadcastAlgorithms = old }()
	bands := BroadcastWinnerMap(OneSendAndRecv, 5, 100, 1, 1, 1<<26, 2)
	if len(bands) < 2 {
		t.Fatalf("expected a crossover, got %v", bands)
	}
	if bands[0].Winner != SBT {
		t.Errorf("small-message winner %v, want SBT", bands[0].Winner)
	}
	if bands[len(bands)-1].Winner != HP {
		t.Errorf("large-message winner %v, want HP", bands[len(bands)-1].Winner)
	}
}
