package model

// BroadcastAlgorithms lists the broadcast candidates in Table 3 order.
var BroadcastAlgorithms = []Algorithm{HP, SBT, TCBT, MSBT}

// ScatterAlgorithms lists the personalized-communication candidates.
var ScatterAlgorithms = []Algorithm{SBT, TCBT, BST}

// BestBroadcast returns the algorithm with the smallest T_min for the
// given parameters and port model, and that time. The HP has no all-port
// row (extra ports cannot help a path), so it competes with its
// full-duplex time there.
func BestBroadcast(pm PortModel, p Params) (Algorithm, float64) {
	best := Algorithm(-1)
	bestT := 0.0
	for _, a := range BroadcastAlgorithms {
		eff := pm
		if a == HP && pm == AllPorts {
			eff = OneSendAndRecv
		}
		t := BroadcastTmin(a, eff, p)
		if best < 0 || t < bestT {
			best, bestT = a, t
		}
	}
	return best, bestT
}

// BestScatter returns the scatter algorithm with the smallest Table 6
// T_min for the given parameters and port model, and that time.
func BestScatter(pm PortModel, p Params) (Algorithm, float64) {
	best := Algorithm(-1)
	bestT := 0.0
	for _, a := range ScatterAlgorithms {
		t := ScatterTmin(a, pm, p)
		if best < 0 || t < bestT {
			best, bestT = a, t
		}
	}
	return best, bestT
}

// WinnerBand is a maximal message-size interval with a single best
// algorithm.
type WinnerBand struct {
	FromM, ToM float64 // inclusive sample bounds; ToM == FromM for single samples
	Winner     Algorithm
}

// BroadcastWinnerMap sweeps M geometrically from mLo to mHi (inclusive,
// factor step) and returns the bands of best broadcast algorithms.
func BroadcastWinnerMap(pm PortModel, n int, tau, tc, mLo, mHi, step float64) []WinnerBand {
	var bands []WinnerBand
	for m := mLo; m <= mHi; m *= step {
		p := Params{N: n, M: m, Tau: tau, Tc: tc}
		w, _ := BestBroadcast(pm, p)
		if len(bands) > 0 && bands[len(bands)-1].Winner == w {
			bands[len(bands)-1].ToM = m
			continue
		}
		bands = append(bands, WinnerBand{FromM: m, ToM: m, Winner: w})
	}
	return bands
}
