// The networked subcommands: `serve` runs one node of a multi-process
// cube over the TCP transport, `launch` spawns a whole cube of serve
// processes on localhost and verifies the collectives end to end.
//
// Peer discovery has two modes. With -peers, every process is told the
// full address list up front (the two-terminal workflow: fixed -listen
// ports, same -peers on both sides). Without it, serve prints
// "ADDR <id> <addr>" on stdout and waits for a "PEERS <a0> <a1> ..."
// line on stdin — the handshake `launch` drives for its children.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"

	"repro/internal/comm"
	"repro/internal/cube"
	"repro/internal/mpx"
	"repro/internal/transport"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension")
	id := fs.Int("id", 0, "node this process hosts")
	listen := fs.String("listen", "127.0.0.1:0", "listen address (port 0 = pick a free one)")
	peersS := fs.String("peers", "", "comma-separated listen addresses of all 2^n nodes in node order (empty = stdio handshake: print ADDR, read PEERS)")
	m := fs.Int("m", 4096, "broadcast payload size in bytes")
	fs.Parse(args)

	if *id < 0 || *id >= 1<<uint(*n) {
		return fmt.Errorf("serve: node id %d outside the %d-cube", *id, *n)
	}
	tr, err := transport.NewTCP(transport.TCPOptions{
		Dim:    *n,
		Locals: []cube.NodeID{cube.NodeID(*id)},
		Listen: *listen,
		Depth:  comm.CollectiveDepth(*n),
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	var peers []string
	if *peersS != "" {
		peers = strings.Split(*peersS, ",")
		if len(peers) != 1<<uint(*n) {
			return fmt.Errorf("serve: -peers lists %d addresses, a %d-cube has %d nodes", len(peers), *n, 1<<uint(*n))
		}
	} else {
		fmt.Printf("ADDR %d %s\n", *id, tr.Addr())
		sc := bufio.NewScanner(os.Stdin)
		if !sc.Scan() {
			return fmt.Errorf("serve: stdin closed before the PEERS line arrived")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 1+1<<uint(*n) || fields[0] != "PEERS" {
			return fmt.Errorf("serve: want %q line with %d addresses, got %q", "PEERS", 1<<uint(*n), sc.Text())
		}
		peers = fields[1:]
	}
	if err := tr.Connect(peers); err != nil {
		return err
	}
	return comm.RunOn(mpx.NewWithTransport(tr, nil), nodeProgram(*m))
}

// nodeProgram is the workload every serve process runs: an MSBT
// broadcast (payload chunked down the n edge-disjoint ERSBTs), a BST
// scatter, a gather round-trip proving every rank's payload back at the
// root, and a closing barrier. All expected values are derived
// deterministically from the rank, so each process verifies its own
// deliveries with no shared memory.
func nodeProgram(mbytes int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		const root = cube.NodeID(0)
		data := make([]byte, mbytes)
		rand.New(rand.NewSource(7)).Read(data) // same bytes in every process

		var in []byte
		if c.Rank() == root {
			in = data
		}
		got, err := c.BcastMSBT(root, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("rank %d reassembled a wrong broadcast payload (%d bytes)", c.Rank(), len(got))
		}

		personal := make([][]byte, c.Size())
		for i := range personal {
			personal[i] = []byte(fmt.Sprintf("personal-%d", i))
		}
		var ins [][]byte
		if c.Rank() == root {
			ins = personal
		}
		mine, err := c.Scatter(root, ins)
		if err != nil {
			return err
		}
		if !bytes.Equal(mine, personal[c.Rank()]) {
			return fmt.Errorf("rank %d got scatter payload %q", c.Rank(), mine)
		}
		all, err := c.Gather(root, mine)
		if err != nil {
			return err
		}
		if c.Rank() == root {
			for i := range all {
				if !bytes.Equal(all[i], personal[i]) {
					return fmt.Errorf("gather slot %d wrong at the root", i)
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		fmt.Printf("OK %d: msbt broadcast %dB + bst scatter/gather verified\n", c.Rank(), len(got))
		return nil
	}
}

func cmdLaunch(args []string) error {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension (spawns 2^n serve processes)")
	m := fs.Int("m", 4096, "broadcast payload size in bytes")
	fs.Parse(args)

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	N := 1 << uint(*n)
	children := make([]*exec.Cmd, N)
	stdins := make([]*bufio.Writer, N)
	scanners := make([]*bufio.Scanner, N)
	killAll := func() {
		for _, cmd := range children {
			if cmd != nil && cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	}
	for i := 0; i < N; i++ {
		cmd := exec.Command(exe, "serve",
			"-n", fmt.Sprint(*n), "-id", fmt.Sprint(i), "-m", fmt.Sprint(*m))
		cmd.Stderr = os.Stderr
		inPipe, err := cmd.StdinPipe()
		if err != nil {
			killAll()
			return err
		}
		outPipe, err := cmd.StdoutPipe()
		if err != nil {
			killAll()
			return err
		}
		if err := cmd.Start(); err != nil {
			killAll()
			return fmt.Errorf("launch: starting node %d: %w", i, err)
		}
		children[i] = cmd
		stdins[i] = bufio.NewWriter(inPipe)
		scanners[i] = bufio.NewScanner(outPipe)
	}

	// Phase 1: collect every child's ADDR announcement.
	peers := make([]string, N)
	for i, sc := range scanners {
		if !sc.Scan() {
			killAll()
			return fmt.Errorf("launch: node %d exited before announcing its address", i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 || fields[0] != "ADDR" || fields[1] != fmt.Sprint(i) {
			killAll()
			return fmt.Errorf("launch: node %d announced %q, want \"ADDR %d <addr>\"", i, sc.Text(), i)
		}
		peers[i] = fields[2]
	}

	// Phase 2: hand the full address list to every child.
	peerLine := "PEERS " + strings.Join(peers, " ") + "\n"
	for i, w := range stdins {
		if _, err := w.WriteString(peerLine); err != nil || w.Flush() != nil {
			killAll()
			return fmt.Errorf("launch: feeding peers to node %d: %v", i, err)
		}
	}

	// Phase 3: relay child output and wait for the verdicts.
	var mu sync.Mutex
	okSeen := make([]bool, N)
	var wg sync.WaitGroup
	for i, sc := range scanners {
		wg.Add(1)
		go func(i int, sc *bufio.Scanner) {
			defer wg.Done()
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, fmt.Sprintf("OK %d:", i)) {
					mu.Lock()
					okSeen[i] = true
					mu.Unlock()
				}
				fmt.Printf("[node %d] %s\n", i, line)
			}
		}(i, sc)
	}
	wg.Wait()
	var firstErr error
	for i, cmd := range children {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: node %d: %w", i, err)
			killAll() // abort the job: a dead rank would hang the rest
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for i, ok := range okSeen {
		if !ok {
			return fmt.Errorf("launch: node %d exited cleanly but never reported OK", i)
		}
	}
	fmt.Printf("launch: %d processes, every rank verified msbt broadcast + bst scatter over TCP\n", N)
	return nil
}
