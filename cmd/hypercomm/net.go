// The networked subcommands: `serve` runs one node of a multi-process
// cube over the socket transport (TCP or Unix-domain, see -transport),
// `launch` spawns a whole cube of serve
// processes on localhost and verifies the collectives end to end, and
// `chaos` is the self-healing drill: a launch whose children run chaos
// agents against their own live sockets (or, with -kill-node, lose a
// whole process) while the collectives must either complete correctly
// or fail fast naming the dead peer.
//
// Peer discovery has two modes. With -peers, every process is told the
// full address list up front (the two-terminal workflow: fixed -listen
// ports, same -peers on both sides). Without it, serve prints
// "ADDR <id> <addr>" on stdout and waits for a "PEERS <a0> <a1> ..."
// line on stdin — the handshake `launch` and `chaos` drive for their
// children.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/cube"
	"repro/internal/mpx"
	"repro/internal/svc"
	"repro/internal/transport"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension")
	id := fs.Int("id", 0, "node this process hosts")
	listen := fs.String("listen", "", "listen address (tcp default 127.0.0.1:0 = pick a free port; uds default = fresh socket path)")
	peersS := fs.String("peers", "", "comma-separated listen addresses of all 2^n nodes in node order (empty = stdio handshake: print ADDR, read PEERS)")
	transportS := fs.String("transport", "auto", "socket family for the cube links: tcp, uds, or auto (uds when peers arrive over the stdio handshake — a same-host deployment — tcp with an explicit -peers list)")
	autotune := fs.Bool("autotune", false, "model-driven packet sizing: collectives split payloads at the online B_opt from the link-cost fit")
	naiveAllNode := fs.Bool("naive-allnode", false, "run the all-node collectives with the naive forward-on-arrival launch instead of the contention-aware multi-source schedule (A/B baseline)")
	stripes := fs.Int("stripes", 0, "parallel connections per link for striped bulk sends (0/1 = single connection; incompatible with -resilient)")
	m := fs.Int("m", 4096, "broadcast payload size in bytes")
	rounds := fs.Int("rounds", 1, "workload repetitions (each: msbt broadcast + bst scatter/gather + barrier)")
	runFor := fs.Duration("for", 0, "run workload rounds in lockstep until this much wall-clock time elapses at the root (overrides -rounds)")
	resilient := fs.Bool("resilient", false, "self-healing links: redial with backoff and resume/retransmit on a lost connection instead of failing")
	attempts := fs.Int("attempts", 0, "reconnect attempts per outage before escalating (0 = transport default)")
	budget := fs.Duration("budget", 0, "total reconnect budget per outage before escalating (0 = transport default)")
	deadline := fs.Duration("deadline", 0, "per-collective deadline (0 = block indefinitely)")
	chaos := fs.Bool("chaos", false, "run a chaos agent that kills, flaps and delays this process's own live connections")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the chaos agent's schedule")
	chaosHold := fs.Duration("chaos-hold", 0, "how long chaos flap/delay faults persist (0 = agent default)")
	jobs := fs.Int("jobs", 0, "run this many concurrent collective jobs under the svc runtime instead of the lockstep workload (every process must pass the same -jobs/-tenants/-jobs-seed)")
	tenants := fs.Int("tenants", 4, "number of tenants the job mix rotates over (jobs mode)")
	jobsSeed := fs.Int64("jobs-seed", 1, "base seed for the deterministic job mix (jobs mode)")
	batchHold := fs.Duration("batch-hold", 0, "cross-job aggregation window on plain wire-v2 links (jobs mode; ignored with -resilient)")
	verbose := fs.Bool("v", false, "print a STATS line with the link-health counters after the run")
	fs.Parse(args)

	if *id < 0 || *id >= 1<<uint(*n) {
		return fmt.Errorf("serve: node id %d outside the %d-cube", *id, *n)
	}
	// Resolve the socket family. "auto" picks Unix-domain sockets when the
	// peers arrive over the stdio handshake — launch/chaos/jobs spawn the
	// whole cube on this host, so the TCP/IP stack buys nothing — and TCP
	// when an explicit -peers list may span hosts. Peer addresses are
	// self-describing on the wire ("unix:<path>" vs "host:port"), so mixed
	// choices across processes still interconnect.
	var network string
	switch *transportS {
	case "tcp":
		network = "tcp"
	case "uds":
		network = "unix"
	case "auto":
		if *peersS == "" {
			network = "unix"
		} else {
			network = "tcp"
		}
	default:
		return fmt.Errorf("serve: unknown -transport %q (want tcp, uds or auto)", *transportS)
	}
	var cls mpx.JobClassifier
	if *jobs > 0 {
		cls = svc.StatsClassifier // per-job payload accounting for the STATS line
	}
	tr, err := transport.NewTCP(transport.TCPOptions{
		Dim:     *n,
		Locals:  []cube.NodeID{cube.NodeID(*id)},
		Listen:  *listen,
		Network: network,
		Stripes: *stripes,
		Depth:   comm.CollectiveDepth(*n),
		Resilience: transport.ResilienceOptions{
			Enabled:     *resilient,
			MaxAttempts: *attempts,
			Budget:      *budget,
		},
		BatchHold:  *batchHold,
		Classifier: cls,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	var peers []string
	if *peersS != "" {
		peers = strings.Split(*peersS, ",")
		if len(peers) != 1<<uint(*n) {
			return fmt.Errorf("serve: -peers lists %d addresses, a %d-cube has %d nodes", len(peers), *n, 1<<uint(*n))
		}
	} else {
		fmt.Printf("ADDR %d %s\n", *id, tr.Addr())
		sc := bufio.NewScanner(os.Stdin)
		if !sc.Scan() {
			return fmt.Errorf("serve: stdin closed before the PEERS line arrived")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 1+1<<uint(*n) || fields[0] != "PEERS" {
			return fmt.Errorf("serve: want %q line with %d addresses, got %q", "PEERS", 1<<uint(*n), sc.Text())
		}
		peers = fields[1:]
	}
	if err := tr.Connect(peers); err != nil {
		return err
	}
	var agent *transport.Chaos
	if *chaos {
		agent = tr.StartChaos(transport.ChaosOptions{
			Seed:  *chaosSeed,
			Kinds: []transport.ChaosKind{transport.ChaosKill, transport.ChaosFlap, transport.ChaosDelay},
			Hold:  *chaosHold,
			Log: func(format string, a ...any) {
				fmt.Printf("CHAOS %d: "+format+"\n", append([]any{*id}, a...)...)
			},
		})
	}
	machine := mpx.NewWithTransport(tr, nil)
	var runErr error
	if *jobs > 0 {
		runErr = serveJobs(machine, *n, *id, *jobs, *tenants, *jobsSeed)
	} else {
		runErr = comm.RunOn(machine, serveProgram(*m, *rounds, *runFor, *deadline, *autotune, *naiveAllNode))
	}
	if agent != nil {
		agent.Stop()
	}
	if *verbose {
		if st, ok := machine.Stats(); ok {
			line := fmt.Sprintf("STATS %d: reconnects=%d retransmits=%d crc_dropped=%d acks=%d acks_batched=%d nacks=%d dups_dropped=%d severed=%d replay_hw=%d bytes_sent=%d bytes_recv=%d frames_sent=%d frames_recv=%d payload_delivered=%d member_drops=%d grow_events=%d grow_accepts=%d attaches_recv=%d",
				*id, st.Reconnects, st.Retransmits, st.CRCDropped, st.AcksSent, st.AcksBatched,
				st.NacksSent, st.DupsDropped, st.SeveredLinks, st.ReplayHighWater,
				st.BytesSent, st.BytesReceived, st.FramesSent, st.FramesReceived, st.PayloadDelivered,
				st.MemberDrops, st.GrowEvents, st.GrowAccepts, st.AttachesReceived)
			if len(st.PayloadByJob) > 0 {
				keys := make([]int, 0, len(st.PayloadByJob))
				for k := range st.PayloadByJob {
					keys = append(keys, k)
				}
				sort.Ints(keys)
				parts := make([]string, len(keys))
				for i, k := range keys {
					parts[i] = fmt.Sprintf("t%dj%d:%d", svc.KeyTenant(k), svc.KeyJob(k), st.PayloadByJob[k])
				}
				line += " per_job=" + strings.Join(parts, ",")
			}
			fmt.Println(line)
		}
	}
	return runErr
}

// serveJobs runs this process's share of a multi-tenant job mix under
// the svc runtime: submit the deterministic MixedJobSpec sequence (the
// lockstep submission rule — every process in the cube must submit the
// SAME jobs in the SAME order, which the shared -jobs/-tenants/-jobs-seed
// flags guarantee), wait for every handle, and drain. Each job verifies
// its own payloads byte-exactly on every rank, so the OK line is a real
// verdict, not a liveness ping.
func serveJobs(machine *mpx.Machine, n, id, jobs, tenants int, seed int64) error {
	rt := svc.New(machine, svc.Options{})
	rt.Start()
	handles := make([]*svc.Handle, jobs)
	var firstErr error
	for i := range handles {
		s := comm.MixedJobSpec(n, tenants, seed, i)
		h, err := rt.Submit(s.Tenant, s.Program())
		if err != nil {
			firstErr = fmt.Errorf("submitting job %d %v: %w", i, s, err)
			break
		}
		handles[i] = h
	}
	for i, h := range handles {
		if h == nil {
			continue
		}
		if err := h.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("job %d %v: %w", i, comm.MixedJobSpec(n, tenants, seed, i), err)
		}
	}
	if err := rt.Drain(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return firstErr
	}
	fmt.Printf("OK %d: %d jobs from %d tenants verified (bcast+scatter+allreduce mix)\n", id, jobs, tenants)
	return nil
}

// serveProgram runs the verification workload either a fixed number of
// times (-rounds) or in a lockstep loop until runFor elapses at the
// root (-for): the root measures the clock and broadcasts a one-byte
// continue/stop flag each round, so all ranks agree on the round count
// without shared memory. The timed mode is what keeps collectives in
// flight while a chaos agent or an external kill disturbs the links.
func serveProgram(mbytes, rounds int, runFor, deadline time.Duration, autotune, naiveAllNode bool) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		if deadline > 0 {
			c.SetDeadline(deadline)
		}
		c.SetAutotune(autotune)
		c.SetAllNodeSchedule(!naiveAllNode)
		done := 0
		if runFor > 0 {
			start := time.Now()
			for r := 0; ; r++ {
				flag := []byte{1}
				if c.Rank() == 0 && time.Since(start) > runFor {
					flag = []byte{0}
				}
				flag, err := c.Bcast(0, flag)
				if err != nil {
					return fmt.Errorf("round %d continue-flag: %w", r, err)
				}
				if flag[0] == 0 {
					break
				}
				if err := workloadRound(c, mbytes); err != nil {
					return fmt.Errorf("round %d: %w", r, err)
				}
				done++
			}
		} else {
			for r := 0; r < rounds; r++ {
				if err := workloadRound(c, mbytes); err != nil {
					return fmt.Errorf("round %d: %w", r, err)
				}
				done++
			}
		}
		fmt.Printf("OK %d: %d round(s) of msbt broadcast (%dB) + bst scatter/gather + all-to-all verified\n", c.Rank(), done, mbytes)
		return nil
	}
}

// workloadRound is one round of the workload every serve process runs:
// an MSBT broadcast (payload chunked down the n edge-disjoint ERSBTs),
// a BST scatter, a gather round-trip proving every rank's payload back
// at the root, a full all-to-all personalized exchange (all 2^n
// sources at once — the multi-source scheduled path unless
// -naive-allnode), and a closing barrier. All expected values are
// derived deterministically from the rank, so each process verifies
// its own deliveries with no shared memory.
func workloadRound(c *comm.Comm, mbytes int) error {
	const root = cube.NodeID(0)
	data := make([]byte, mbytes)
	rand.New(rand.NewSource(7)).Read(data) // same bytes in every process

	var in []byte
	if c.Rank() == root {
		in = data
	}
	got, err := c.BcastMSBT(root, in)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("rank %d reassembled a wrong broadcast payload (%d bytes)", c.Rank(), len(got))
	}

	personal := make([][]byte, c.Size())
	for i := range personal {
		personal[i] = []byte(fmt.Sprintf("personal-%d", i))
	}
	var ins [][]byte
	if c.Rank() == root {
		ins = personal
	}
	mine, err := c.Scatter(root, ins)
	if err != nil {
		return err
	}
	if !bytes.Equal(mine, personal[c.Rank()]) {
		return fmt.Errorf("rank %d got scatter payload %q", c.Rank(), mine)
	}
	all, err := c.Gather(root, mine)
	if err != nil {
		return err
	}
	if c.Rank() == root {
		for i := range all {
			if !bytes.Equal(all[i], personal[i]) {
				return fmt.Errorf("gather slot %d wrong at the root", i)
			}
		}
	}

	outbound := make([][]byte, c.Size())
	for j := range outbound {
		outbound[j] = []byte(fmt.Sprintf("a2a-%d-%d", c.Rank(), j))
	}
	pairs, err := c.AllToAll(outbound)
	if err != nil {
		return err
	}
	for i, pkt := range pairs {
		if want := fmt.Sprintf("a2a-%d-%d", i, c.Rank()); string(pkt) != want {
			return fmt.Errorf("rank %d got all-to-all packet %q from %d, want %q", c.Rank(), pkt, i, want)
		}
	}
	return c.Barrier()
}

// cubeProc is one spawned serve child with its wired pipes.
type cubeProc struct {
	cmd    *exec.Cmd
	out    *bufio.Scanner
	in     *bufio.Writer // the child's stdin, kept open after the handshake
	stderr *bytes.Buffer // nil unless stderr is captured
}

// spawnCube starts one serve child per cube node, runs the ADDR/PEERS
// discovery handshake, and returns the wired processes, the discovered
// peer address list, and a killAll for abandoning the job. Each child's
// stdin stays open (cubeProc.in) so drills can send runtime commands —
// the churn drill drives CRASH/DRAIN/STOP over it. With captureStderr
// the children's stderr is buffered per child for post-mortem
// inspection (the chaos drill reads it to find the dead peer's name);
// otherwise it interleaves on the parent's stderr.
func spawnCube(N int, argsFor func(i int) []string, captureStderr bool) ([]*cubeProc, []string, func(), error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, nil, err
	}
	procs := make([]*cubeProc, N)
	killAll := func() {
		for _, p := range procs {
			if p != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}
	}
	for i := 0; i < N; i++ {
		cmd := exec.Command(exe, argsFor(i)...)
		p := &cubeProc{cmd: cmd}
		if captureStderr {
			p.stderr = &bytes.Buffer{}
			cmd.Stderr = p.stderr
		} else {
			cmd.Stderr = os.Stderr
		}
		inPipe, err := cmd.StdinPipe()
		if err != nil {
			killAll()
			return nil, nil, nil, err
		}
		outPipe, err := cmd.StdoutPipe()
		if err != nil {
			killAll()
			return nil, nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			killAll()
			return nil, nil, nil, fmt.Errorf("starting node %d: %w", i, err)
		}
		p.out = bufio.NewScanner(outPipe)
		// The jobs-mode STATS line carries one per_job entry per job and
		// can outgrow the scanner's 64KB default token limit.
		p.out.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		p.in = bufio.NewWriter(inPipe)
		procs[i] = p
	}

	// Phase 1: collect every child's ADDR announcement.
	peers := make([]string, N)
	for i, p := range procs {
		if !p.out.Scan() {
			killAll()
			return nil, nil, nil, fmt.Errorf("node %d exited before announcing its address", i)
		}
		fields := strings.Fields(p.out.Text())
		if len(fields) != 3 || fields[0] != "ADDR" || fields[1] != fmt.Sprint(i) {
			killAll()
			return nil, nil, nil, fmt.Errorf("node %d announced %q, want \"ADDR %d <addr>\"", i, p.out.Text(), i)
		}
		peers[i] = fields[2]
	}

	// Phase 2: hand the full address list to every child.
	peerLine := "PEERS " + strings.Join(peers, " ") + "\n"
	for i, p := range procs {
		if _, err := p.in.WriteString(peerLine); err != nil || p.in.Flush() != nil {
			killAll()
			return nil, nil, nil, fmt.Errorf("feeding peers to node %d: %v", i, err)
		}
	}
	return procs, peers, killAll, nil
}

func cmdLaunch(args []string) error {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension (spawns 2^n serve processes)")
	m := fs.Int("m", 4096, "broadcast payload size in bytes")
	transportS := fs.String("transport", "auto", "socket family the children link over: tcp, uds, or auto (same-host launch = uds)")
	autotune := fs.Bool("autotune", false, "enable model-driven packet sizing inside the children")
	naiveAllNode := fs.Bool("naive-allnode", false, "run the children's all-node collectives with the naive launch instead of the multi-source schedule")
	stripes := fs.Int("stripes", 0, "parallel connections per link inside the children (0/1 = single connection)")
	fs.Parse(args)

	N := 1 << uint(*n)
	procs, _, killAll, err := spawnCube(N, func(i int) []string {
		a := []string{"serve", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(i), "-m", fmt.Sprint(*m),
			"-transport", *transportS}
		if *autotune {
			a = append(a, "-autotune")
		}
		if *naiveAllNode {
			a = append(a, "-naive-allnode")
		}
		if *stripes > 1 {
			a = append(a, "-stripes", fmt.Sprint(*stripes))
		}
		return a
	}, false)
	if err != nil {
		return fmt.Errorf("launch: %w", err)
	}

	// Phase 3: relay child output and wait for the verdicts.
	var mu sync.Mutex
	okSeen := make([]bool, N)
	var wg sync.WaitGroup
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *cubeProc) {
			defer wg.Done()
			for p.out.Scan() {
				line := p.out.Text()
				if strings.HasPrefix(line, fmt.Sprintf("OK %d:", i)) {
					mu.Lock()
					okSeen[i] = true
					mu.Unlock()
				}
				fmt.Printf("[node %d] %s\n", i, line)
			}
		}(i, p)
	}
	wg.Wait()
	var firstErr error
	for i, p := range procs {
		if err := p.cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("launch: node %d: %w", i, err)
			killAll() // abort the job: a dead rank would hang the rest
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for i, ok := range okSeen {
		if !ok {
			return fmt.Errorf("launch: node %d exited cleanly but never reported OK", i)
		}
	}
	// Children resolve "auto" themselves; under the launcher's stdio
	// handshake that is always the same-host answer, uds.
	family := *transportS
	if family == "auto" {
		family = "uds"
	}
	fmt.Printf("launch: %d processes, every rank verified msbt broadcast + bst scatter + all-to-all (transport %s)\n", N, family)
	return nil
}

// cmdChaos is the multi-process self-healing drill. Default mode:
// spawn a cube of resilient serve processes, each running a chaos agent
// against its own live sockets, keep lockstep collectives flowing for
// -for, and require every rank to verify every payload despite at
// least -min-events injected faults. With -kill-node the agents stay
// off and one child is killed outright instead: the run must then FAIL
// fast — survivors exhaust their reconnect budgets and name the dead
// peer — and the drill passes only if that happens within the wait
// bound (no hang, no false OK).
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension (spawns 2^n serve processes)")
	m := fs.Int("m", 4096, "broadcast payload size in bytes")
	runFor := fs.Duration("for", time.Second, "keep lockstep collective rounds running this long")
	seed := fs.Int64("seed", 1, "base chaos seed; child i's agent runs schedule seed+i")
	hold := fs.Duration("hold", 60*time.Millisecond, "how long chaos flap/delay faults persist inside the children")
	attempts := fs.Int("attempts", 0, "reconnect attempts per outage (0 = transport default)")
	budget := fs.Duration("budget", 0, "reconnect budget per outage (0 = transport default)")
	deadline := fs.Duration("deadline", 0, "per-collective deadline inside the children (0 = none)")
	minEvents := fs.Int("min-events", 1, "fail unless the agents injected at least this many faults")
	killNode := fs.Int("kill-node", -1, "kill this child outright instead of running agents: the budget-exhaustion drill")
	killAfter := fs.Duration("kill-after", 200*time.Millisecond, "when to deliver the -kill-node kill")
	transportS := fs.String("transport", "auto", "socket family the children link over: tcp, uds, or auto (same-host launch = uds)")
	fs.Parse(args)

	N := 1 << uint(*n)
	if *killNode >= N {
		return fmt.Errorf("chaos: -kill-node %d outside the %d-cube", *killNode, *n)
	}
	childArgs := func(i int) []string {
		a := []string{"serve", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(i), "-m", fmt.Sprint(*m),
			"-resilient", "-for", runFor.String(), "-v", "-transport", *transportS}
		if *attempts > 0 {
			a = append(a, "-attempts", fmt.Sprint(*attempts))
		}
		if *budget > 0 {
			a = append(a, "-budget", budget.String())
		}
		if *deadline > 0 {
			a = append(a, "-deadline", deadline.String())
		}
		if *killNode < 0 {
			a = append(a, "-chaos", "-chaos-seed", fmt.Sprint(*seed+int64(i)), "-chaos-hold", hold.String())
		}
		return a
	}
	procs, _, killAll, err := spawnCube(N, childArgs, true)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	start := time.Now()

	var mu sync.Mutex
	okSeen := make([]bool, N)
	chaosEvents := 0
	exitErrs := make([]error, N)
	done := make(chan int, N)
	for i, p := range procs {
		go func(i int, p *cubeProc) {
			for p.out.Scan() {
				line := p.out.Text()
				mu.Lock()
				if strings.HasPrefix(line, fmt.Sprintf("OK %d:", i)) {
					okSeen[i] = true
				}
				if strings.HasPrefix(line, "CHAOS ") {
					chaosEvents++
				}
				mu.Unlock()
				fmt.Printf("[node %d] %s\n", i, line)
			}
			// The pipe is drained; now it is safe to reap the child.
			err := p.cmd.Wait()
			mu.Lock()
			exitErrs[i] = err
			mu.Unlock()
			done <- i
		}(i, p)
	}

	if *killNode >= 0 {
		victim := procs[*killNode].cmd
		killTimer := time.AfterFunc(*killAfter, func() {
			fmt.Printf("chaos: killing node %d (pid %d) after %v\n", *killNode, victim.Process.Pid, *killAfter)
			victim.Process.Kill()
		})
		defer killTimer.Stop()
	}

	// The no-hang guarantee is part of the contract under test: bound
	// the whole drill by the time the children could legitimately need
	// (the workload window, the kill delay, one reconnect budget for
	// the direct neighbors of a dead peer) plus cascade-and-exit grace.
	effBudget := *budget
	if effBudget == 0 {
		effBudget = 10 * time.Second // the transport's default budget
	}
	waitTimeout := *runFor + *killAfter + effBudget + 20*time.Second
	hangTimer := time.NewTimer(waitTimeout)
	defer hangTimer.Stop()
	for got := 0; got < N; got++ {
		select {
		case <-done:
		case <-hangTimer.C:
			killAll()
			return fmt.Errorf("chaos: run hung — %d/%d children still alive after %v; the no-hang guarantee failed", N-got, N, waitTimeout)
		}
	}
	elapsed := time.Since(start)

	// Post-mortem: replay every child's captured stderr, prefixed.
	for i, p := range procs {
		if s := strings.TrimSpace(p.stderr.String()); s != "" {
			for _, line := range strings.Split(s, "\n") {
				fmt.Printf("[node %d!] %s\n", i, line)
			}
		}
	}

	if *killNode >= 0 {
		allOK := true
		for _, ok := range okSeen {
			allOK = allOK && ok
		}
		if allOK {
			return fmt.Errorf("chaos: every rank finished before the kill landed — raise -for or lower -kill-after")
		}
		failed := 0
		for i, e := range exitErrs {
			if i != *killNode && e != nil {
				failed++
			}
		}
		if failed == 0 {
			return fmt.Errorf("chaos: node %d was killed yet every survivor exited cleanly", *killNode)
		}
		needle := fmt.Sprintf("link to peer %d failed", *killNode)
		named := false
		for i, p := range procs {
			if i != *killNode && strings.Contains(p.stderr.String(), needle) {
				named = true
				break
			}
		}
		if !named {
			return fmt.Errorf("chaos: no survivor named the dead peer %d (want %q in a child's error)", *killNode, needle)
		}
		fmt.Printf("chaos: budget-exhaustion drill passed: killed node %d, %d survivors failed fast (%v total) naming the dead peer\n",
			*killNode, failed, elapsed.Round(time.Millisecond))
		return nil
	}

	var firstErr error
	for i, e := range exitErrs {
		if e != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos: node %d: %w", i, e)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for i, ok := range okSeen {
		if !ok {
			return fmt.Errorf("chaos: node %d exited cleanly but never reported OK", i)
		}
	}
	if chaosEvents < *minEvents {
		return fmt.Errorf("chaos: agents injected %d events, want at least %d — raise -for", chaosEvents, *minEvents)
	}
	fmt.Printf("chaos: %d processes survived %d injected faults over %v; every rank verified msbt broadcast + bst scatter/gather\n",
		N, chaosEvents, elapsed.Round(time.Millisecond))
	return nil
}

// cmdJobs is the multi-process collective-service drill: spawn a cube
// of serve processes in jobs mode, all submitting the identical
// deterministic multi-tenant job mix (the lockstep submission rule made
// concrete across OS processes), and require every rank to verify every
// job byte-exactly. The parent additionally aggregates the per-job
// payload counters from the children's STATS lines and fails unless
// every submitted job actually moved accounted payload — the service's
// metering must cover the whole mix, not just complete it. With -chaos
// the children run seeded chaos agents against their own resilient
// links while the jobs flow (the multi-job soak).
func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	n := fs.Int("n", 3, "cube dimension (spawns 2^n serve processes)")
	jobs := fs.Int("jobs", 24, "concurrent collective jobs in the mix")
	tenants := fs.Int("tenants", 4, "tenants the mix rotates over")
	seed := fs.Int64("seed", 1, "base seed for the deterministic job mix")
	resilient := fs.Bool("resilient", false, "run the children with self-healing links")
	batchHold := fs.Duration("batch-hold", 0, "cross-job aggregation window inside the children (plain links only)")
	chaos := fs.Bool("chaos", false, "run chaos agents inside the children while the jobs flow (implies -resilient)")
	chaosSeed := fs.Int64("chaos-seed", 1, "base chaos seed; child i's agent runs schedule chaos-seed+i")
	hold := fs.Duration("hold", 60*time.Millisecond, "how long chaos flap/delay faults persist inside the children")
	minEvents := fs.Int("min-events", 1, "with -chaos, fail unless the agents injected at least this many faults")
	transportS := fs.String("transport", "auto", "socket family the children link over: tcp, uds, or auto (same-host launch = uds)")
	fs.Parse(args)

	if *tenants < 1 {
		return fmt.Errorf("jobs: -tenants must be at least 1")
	}
	N := 1 << uint(*n)
	childArgs := func(i int) []string {
		a := []string{"serve", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(i),
			"-jobs", fmt.Sprint(*jobs), "-tenants", fmt.Sprint(*tenants),
			"-jobs-seed", fmt.Sprint(*seed), "-v", "-transport", *transportS}
		if *resilient || *chaos {
			a = append(a, "-resilient")
		}
		if *batchHold > 0 {
			a = append(a, "-batch-hold", batchHold.String())
		}
		if *chaos {
			a = append(a, "-chaos", "-chaos-seed", fmt.Sprint(*chaosSeed+int64(i)), "-chaos-hold", hold.String())
		}
		return a
	}
	procs, _, killAll, err := spawnCube(N, childArgs, false)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	start := time.Now()

	var mu sync.Mutex
	okSeen := make([]bool, N)
	chaosEvents := 0
	perJob := map[string]int64{} // "t<tenant>j<job>" -> payload bytes, summed across children
	exitErrs := make([]error, N)
	done := make(chan int, N)
	for i, p := range procs {
		go func(i int, p *cubeProc) {
			for p.out.Scan() {
				line := p.out.Text()
				mu.Lock()
				if strings.HasPrefix(line, fmt.Sprintf("OK %d:", i)) {
					okSeen[i] = true
				}
				if strings.HasPrefix(line, "CHAOS ") {
					chaosEvents++
				}
				if idx := strings.Index(line, " per_job="); idx >= 0 {
					for _, ent := range strings.Split(line[idx+len(" per_job="):], ",") {
						key, val, ok := strings.Cut(ent, ":")
						if !ok {
							continue
						}
						var b int64
						if _, err := fmt.Sscanf(val, "%d", &b); err == nil {
							perJob[key] += b
						}
					}
				}
				mu.Unlock()
				fmt.Printf("[node %d] %s\n", i, line)
			}
			err := p.cmd.Wait()
			mu.Lock()
			exitErrs[i] = err
			mu.Unlock()
			done <- i
		}(i, p)
	}

	// Bound the drill: the jobs are small collectives, so even a chaotic
	// run should finish inside one reconnect budget per fault plus grace.
	waitTimeout := 90 * time.Second
	hangTimer := time.NewTimer(waitTimeout)
	defer hangTimer.Stop()
	for got := 0; got < N; got++ {
		select {
		case <-done:
		case <-hangTimer.C:
			killAll()
			return fmt.Errorf("jobs: run hung — %d/%d children still alive after %v", N-got, N, waitTimeout)
		}
	}
	elapsed := time.Since(start)

	var firstErr error
	for i, e := range exitErrs {
		if e != nil && firstErr == nil {
			firstErr = fmt.Errorf("jobs: node %d: %w", i, e)
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for i, ok := range okSeen {
		if !ok {
			return fmt.Errorf("jobs: node %d exited cleanly but never reported OK", i)
		}
	}
	var total int64
	for _, b := range perJob {
		total += b
	}
	if len(perJob) < *jobs {
		return fmt.Errorf("jobs: per-job payload accounting covers %d job keys, want %d — some jobs moved no accounted payload", len(perJob), *jobs)
	}
	if *chaos && chaosEvents < *minEvents {
		return fmt.Errorf("jobs: agents injected %d events, want at least %d", chaosEvents, *minEvents)
	}
	if *chaos {
		fmt.Printf("jobs: %d processes × %d jobs from %d tenants verified under %d injected faults over %v; per-job metering covered %d keys (%d payload bytes)\n",
			N, *jobs, *tenants, chaosEvents, elapsed.Round(time.Millisecond), len(perJob), total)
	} else {
		fmt.Printf("jobs: %d processes × %d jobs from %d tenants verified over %v; per-job metering covered %d keys (%d payload bytes)\n",
			N, *jobs, *tenants, elapsed.Round(time.Millisecond), len(perJob), total)
	}
	return nil
}
