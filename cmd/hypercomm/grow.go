// The online-growth drill: `grow` founds a d-cube of member processes,
// lets root-signed collective rounds flow, then joins a rank BEYOND the
// founding 2^d mid-traffic — forcing every survivor to widen its link
// set and cut over to the (d+1)-cube online, with no process restarted.
// The children's round signatures are dim-stamped, so a root and a
// follower ever pinning different cube sizes in the same round turns
// into a hard byte mismatch (a nonzero child exit), not a silent wrong
// answer: the drill's clean exit IS the proof that the epoch gate never
// yielded a mixed-dimension collective. The -churn variant additionally
// crashes a rank and flaps a link during the GROW cutover window.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

func cmdGrow(args []string) error {
	fs := flag.NewFlagSet("grow", flag.ExitOnError)
	n := fs.Int("n", 2, "founding cube dimension (the drill grows the mesh to n+1)")
	seed := fs.Int64("seed", 1, "seed for the churn variant's victim choices")
	churn := fs.Bool("churn", false, "crash a rank and flap a link during the GROW cutover")
	attempts := fs.Int("attempts", 4, "children: reconnect attempts before a peer is declared dead")
	budget := fs.Duration("budget", 2*time.Second, "children: reconnect budget per outage — the crash-detection latency")
	transportS := fs.String("transport", "auto", "socket family the children link over: tcp, uds, or auto (same-host drill = uds)")
	verbose := fs.Bool("v", false, "children log membership diagnostics to stderr")
	fs.Parse(args)

	if *n < 2 || *n > 5 {
		return fmt.Errorf("grow: founding dimension %d outside 2..5 (the grown cube must fit the member cap of 6)", *n)
	}
	family := *transportS
	if family == "auto" {
		family = "uds" // the drill deploys on this host
	}
	N := 1 << uint(*n)
	grownDim := *n + 1
	joinerID := N // the first rank beyond the founding cube

	childArgs := func(i int) []string {
		a := []string{"member", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(i),
			"-transport", family, "-attempts", fmt.Sprint(*attempts),
			"-budget", budget.String(), "-for", "2m"}
		if *verbose {
			a = append(a, "-v")
		}
		return a
	}
	procs, peers, killAll, err := spawnCube(N, childArgs, true)
	if err != nil {
		return fmt.Errorf("grow: %w", err)
	}

	w := newChurnWatch()
	var wg sync.WaitGroup
	relay := func(node int, p *cubeProc) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p.out.Scan() {
				line := p.out.Text()
				w.add(node, line)
				fmt.Printf("[node %d] %s\n", node, line)
			}
		}()
	}
	for i, p := range procs {
		relay(i, p)
	}
	fail := func(format string, a ...any) error {
		killAll()
		for i, p := range procs {
			if p.stderr != nil && p.stderr.Len() > 0 {
				fmt.Printf("---- node %d stderr ----\n%s", i, p.stderr.String())
			}
		}
		return fmt.Errorf("grow: "+format, a...)
	}
	command := func(p *cubeProc, cmd string) {
		p.in.WriteString(cmd + "\n")
		p.in.Flush()
	}

	if !w.waitFor(30*time.Second, func() bool { return len(w.ready) == N }) {
		return fail("only %d/%d members became READY", len(w.ready), N)
	}
	time.Sleep(300 * time.Millisecond) // pre-growth rounds on the founding cube

	// Victims for the churn variant, chosen up front so the storm lands
	// inside the cutover window. Rank 0 is never crashed: it is the
	// joiner's only cube neighbor, i.e. the grow-attach point.
	rng := rand.New(rand.NewSource(*seed))
	crashV, flapV := -1, -1
	if *churn {
		crashV = 1 + rng.Intn(N-1)
		for flapV < 0 || flapV == crashV {
			flapV = rng.Intn(N)
		}
	}

	// GROW: spawn a joiner born at dim n+1 whose peers list names the
	// founding ranks and leaves the rest of the grown cube as holes.
	joinStart := time.Now()
	joinPeers := make([]string, 1<<uint(grownDim))
	copy(joinPeers, peers)
	exe, err := os.Executable()
	if err != nil {
		return fail("%v", err)
	}
	fmt.Printf("grow: joining rank %d into the %d-cube mid-traffic\n", joinerID, grownDim)
	jArgs := []string{"join", "-n", fmt.Sprint(grownDim), "-id", fmt.Sprint(joinerID),
		"-transport", family, "-attempts", fmt.Sprint(*attempts),
		"-budget", budget.String(), "-for", "2m",
		"-peers", strings.Join(joinPeers, ",")}
	if *verbose {
		jArgs = append(jArgs, "-v")
	}
	jCmd := exec.Command(exe, jArgs...)
	joiner := &cubeProc{cmd: jCmd, stderr: &bytes.Buffer{}}
	jCmd.Stderr = joiner.stderr
	jIn, err1 := jCmd.StdinPipe()
	jOut, err2 := jCmd.StdoutPipe()
	if err1 != nil || err2 != nil {
		return fail("wiring the joiner: %v %v", err1, err2)
	}
	joiner.in = bufio.NewWriter(jIn)
	if err := jCmd.Start(); err != nil {
		return fail("starting the joiner: %v", err)
	}
	kill0 := killAll
	killAll = func() {
		kill0()
		if jCmd.Process != nil {
			jCmd.Process.Kill()
		}
	}
	joiner.out = bufio.NewScanner(jOut)
	joiner.out.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	relay(joinerID, joiner)

	if *churn {
		// Storm inside the cutover window: a transient flap (must heal —
		// no view change) and a real crash (must be detected).
		fmt.Printf("grow: storm during cutover — flapping a link at rank %d, crashing rank %d\n", flapV, crashV)
		command(procs[flapV], "FLAP")
		command(procs[crashV], "CRASH")
	}

	// Cutover: rank 0 must flip to the grown dimension with the joiner
	// alive. (Every other survivor's DONE line is checked for the same
	// below — the epoch gate flips them as a unit.)
	detect := 3**budget + 20*time.Second
	if !w.waitFor(detect, func() bool {
		v, ok := w.views[0]
		return ok && v.dim == int64(grownDim) && v.alive&(1<<uint(joinerID)) != 0
	}) {
		return fail("rank 0 never cut over to the %d-cube with rank %d alive", grownDim, joinerID)
	}
	attachLatency := time.Since(joinStart)
	if *churn {
		if !w.waitFor(detect, func() bool {
			v, ok := w.views[0]
			return ok && v.alive&(1<<uint(crashV)) == 0
		}) {
			return fail("rank 0 never saw the crash of rank %d", crashV)
		}
	}
	time.Sleep(500 * time.Millisecond) // post-growth rounds on the (n+1)-cube

	// Stop: the root runs two more rounds on the final view — verified,
	// dim-stamped broadcasts over the grown cube — then signs the stop.
	command(procs[0], "STOP")
	all := append(append([]*cubeProc(nil), procs...), joiner)
	exits := make(chan error, len(all))
	for _, p := range all {
		go func(p *cubeProc) { exits <- p.cmd.Wait() }(p)
	}
	for range all {
		select {
		case err := <-exits:
			if err != nil {
				return fail("a member process exited nonzero: %v", err)
			}
		case <-time.After(90 * time.Second):
			return fail("member processes still running 90s after STOP — the drill hung")
		}
	}
	wg.Wait()

	// Verdict. Every survivor — including the joiner, a rank the
	// founding cube could not even address — finished DONE on the grown
	// dimension with the same final view, and completed rounds there.
	final := func(node int, wantVerb string) (finalRec, error) {
		recs := w.finals[node]
		if len(recs) == 0 {
			return finalRec{}, fmt.Errorf("node %d printed no verdict line", node)
		}
		if recs[0].verb != wantVerb {
			return finalRec{}, fmt.Errorf("node %d verdict is %s, want %s", node, recs[0].verb, wantVerb)
		}
		return recs[0], nil
	}
	wantAlive := (uint64(1)<<uint(N) - 1) | 1<<uint(joinerID)
	if *churn {
		wantAlive &^= 1 << uint(crashV)
		if _, err := final(crashV, "CRASHED"); err != nil {
			return fail("%v", err)
		}
	}
	var totalRounds, totalVC int64
	survivors := []int{}
	for r := 0; r < N; r++ {
		if r != crashV {
			survivors = append(survivors, r)
		}
	}
	survivors = append(survivors, joinerID)
	for _, node := range survivors {
		rec, err := final(node, "DONE")
		if err != nil {
			return fail("%v", err)
		}
		if rec.completed == 0 {
			return fail("survivor %d completed no rounds", node)
		}
		if rec.dim != int64(grownDim) {
			return fail("survivor %d finished on a %d-cube, want the grown %d-cube", node, rec.dim, grownDim)
		}
		if rec.alive != wantAlive || rec.drained != 0 {
			return fail("survivor %d final view alive=%x drained=%x, want alive=%x drained=0",
				node, rec.alive, rec.drained, wantAlive)
		}
		totalRounds += rec.completed
		totalVC += rec.vchanged
	}
	if *churn && totalVC == 0 {
		return fail("no collective was ever interrupted by a view change — the storm proved nothing")
	}
	fmt.Printf("grow: rank %d attached and the mesh cut over %d->%d in %v with no process restarted: %d round completions, %d view-change retries, final view alive=%x\n",
		joinerID, *n, grownDim, attachLatency.Round(time.Millisecond), totalRounds, totalVC, wantAlive)
	return nil
}
