// Command hypercomm is the umbrella CLI for the hypercube collective
// communication library: simulate timed broadcasts and scatters under any
// port model, inspect spanning-structure geometry, and verify the
// distributed implementations end to end on the goroutine runtime.
//
// Subcommands:
//
//	broadcast -alg {hp|sbt|tcbt|msbt} -n DIM -m ELEMS -b PACKET -port {half|duplex|all} [-gantt]
//	scatter   -alg {sbt|bst|tcbt} -n DIM -m ELEMS -b PACKET -order {desc|df|rbf} -rr
//	tree      -alg {hp|sbt|bst|tcbt} -n DIM -s SOURCE [-render ascii|dot|hist]
//	verify    -n DIM -s SOURCE
//	ablate    -n DIM
//	route     -n DIM -perm {bitrev|transpose|random}
//	serve     -n DIM -id NODE [-listen ADDR] [-peers A0,A1,...] [-m BYTES]
//	          [-transport {tcp|uds|auto}] [-autotune] [-stripes K]
//	          [-resilient -attempts K -budget DUR] [-rounds R | -for DUR]
//	          [-deadline DUR] [-chaos -chaos-seed S -chaos-hold DUR] [-v]
//	launch    -n DIM [-m BYTES] [-transport {tcp|uds|auto}] [-autotune] [-stripes K]
//	chaos     -n DIM [-m BYTES] [-for DUR] [-seed S] [-hold DUR]
//	          [-attempts K -budget DUR -deadline DUR] [-min-events E]
//	          [-kill-node NODE -kill-after DUR] [-transport {tcp|uds|auto}]
//	jobs      -n DIM [-jobs K -tenants T -seed S] [-resilient]
//	          [-batch-hold DUR] [-chaos -chaos-seed S -hold DUR -min-events E]
//	          [-transport {tcp|uds|auto}]
//	member    -n DIM -id NODE [-peers A0,A1,...] [-join] [-drain-after DUR]
//	          [-for DUR] [-attempts K -budget DUR] [-transport {tcp|uds|auto}]
//	join      (member -join) attach a late joiner through a dead rank's hole
//	drain     (member -drain-after 2s) a member that leaves gracefully
//	churn     -n DIM [-seed S] [-attempts K -budget DUR]
//	          [-transport {tcp|uds|auto}]
//
// serve runs ONE node of the cube in this OS process, carrying every
// cube link over a socket (checksummed frames, see internal/wire);
// launch spawns a full 2^n-process cube on localhost, wires the
// processes together and verifies an MSBT broadcast and a BST scatter
// end to end. -transport picks the socket family: the default "auto"
// uses Unix-domain sockets when peers are discovered over the stdio
// handshake (launch and its drills deploy on one host, where the
// TCP/IP stack buys nothing) and TCP with an explicit -peers list that
// may span hosts. -autotune turns on model-driven packet sizing: the
// transport fits the link constants (tau, t_c) online and collectives
// split payloads at the paper's B_opt. -stripes opens K parallel
// connections per link and stripes bulk sends across them. With
// -resilient the links self-heal: a lost connection is redialed with
// jittered exponential backoff and the sequenced frames the peer
// missed are retransmitted from a replay ring, so collectives survive
// socket kills invisibly; -v prints the per-node link-health counters
// (reconnects, retransmits, CRC drops, ...) after the run.
//
// chaos is the robustness drill built on launch: every child runs a
// seeded chaos agent that kills, flaps and delays its own live
// sockets while lockstep collective rounds flow for -for; the drill
// passes only if every rank verifies every payload AND at least
// -min-events faults were actually injected. With -kill-node the
// agents stay off and one child process is killed outright instead:
// survivors must exhaust their reconnect budgets and fail fast naming
// the dead peer — complete or fail with a name, never hang.
//
// jobs is the collective-as-a-service drill: every spawned process runs
// the multi-tenant job runtime (internal/svc) over its TCP endpoint and
// submits the identical deterministic mix of broadcast, scatter and
// allreduce jobs from several tenants; each job verifies its own
// payloads byte-exactly on every rank, and the parent cross-checks the
// per-job payload metering from the children's STATS lines. With
// -chaos the children flap their own resilient links mid-run (the
// multi-job soak).
//
// member runs one rank of an ELASTIC mesh — population changes at
// runtime (internal/member): ranks join through dead ranks' holes,
// leave gracefully by draining, or crash and get detected by the
// survivors' reconnect supervisors, while epoch-pinned collective
// rounds keep flowing over reactively repaired spanning trees. join
// and drain are convenience spellings of the joiner and the graceful
// leaver. churn is the storm drill: a seeded crash + hole-join + drain
// sequence against a live cube of member processes, self-verdicting on
// byte-exact round delivery, typed view-change retries, and final-view
// agreement across the survivors.
//
// broadcast, scatter and verify accept fault-injection flags: -faults
// COUNT, -fault-kind {links|nodes|neighbor|drop|corrupt|duplicate|none}
// and -fault-seed SEED. The timed subcommands (broadcast, scatter) apply
// the plan's structural faults to the simulation and report the delivered
// fraction; verify switches to the fault-tolerant collectives (liveness
// probe, redundant multi-tree broadcast, regrafted scatter) on the
// goroutine runtime, where message faults (drop/corrupt/duplicate) are
// injected for real.
//
// Examples:
//
//	hypercomm broadcast -alg msbt -n 7 -m 61440 -b 1024 -port duplex
//	hypercomm verify -n 4 -faults 3 -fault-kind links
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/bst"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/msbt"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/vis"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "broadcast":
		err = cmdBroadcast(os.Args[2:])
	case "scatter":
		err = cmdScatter(os.Args[2:])
	case "tree":
		err = cmdTree(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "ablate":
		err = cmdAblate(os.Args[2:])
	case "route":
		err = cmdRoute(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "launch":
		err = cmdLaunch(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "member":
		err = cmdMember(os.Args[2:])
	case "join":
		err = cmdJoin(os.Args[2:])
	case "drain":
		err = cmdDrain(os.Args[2:])
	case "churn":
		err = cmdChurn(os.Args[2:])
	case "grow":
		err = cmdGrow(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hypercomm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hypercomm <broadcast|scatter|tree|verify|ablate|route|serve|launch|chaos|jobs|member|join|drain|churn|grow> [flags]
run "hypercomm <subcommand> -h" for flags`)
}

func parseAlg(s string) (model.Algorithm, error) {
	switch strings.ToLower(s) {
	case "hp":
		return model.HP, nil
	case "sbt":
		return model.SBT, nil
	case "tcbt":
		return model.TCBT, nil
	case "msbt":
		return model.MSBT, nil
	case "bst":
		return model.BST, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// faultFlags registers the shared fault-injection flags on a FlagSet and
// returns a builder that materializes the plan (nil when fault-free).
func faultFlags(fs *flag.FlagSet) func(n int, protect cube.NodeID) (*fault.Plan, error) {
	count := fs.Int("faults", 0, "number of injected faults (0 with kind none/neighbor = fault-free)")
	kind := fs.String("fault-kind", "links", "fault scenario: links|nodes|neighbor|drop|corrupt|duplicate|none")
	seed := fs.Int64("fault-seed", 1, "seed for the deterministic fault plan")
	return func(n int, protect cube.NodeID) (*fault.Plan, error) {
		if *count <= 0 && *kind != "neighbor" {
			return nil, nil
		}
		return fault.Scenario{Kind: *kind, Count: *count, Seed: *seed}.Plan(n, protect)
	}
}

func parsePort(s string) (model.PortModel, error) {
	switch strings.ToLower(s) {
	case "half":
		return model.OneSendOrRecv, nil
	case "duplex":
		return model.OneSendAndRecv, nil
	case "all":
		return model.AllPorts, nil
	}
	return 0, fmt.Errorf("unknown port model %q (want half|duplex|all)", s)
}

func cmdBroadcast(args []string) error {
	fs := flag.NewFlagSet("broadcast", flag.ExitOnError)
	alg := fs.String("alg", "msbt", "algorithm: hp|sbt|tcbt|msbt")
	n := fs.Int("n", 7, "cube dimension")
	m := fs.Float64("m", 60*1024, "message size in elements")
	b := fs.Float64("b", 1024, "external packet size in elements")
	port := fs.String("port", "duplex", "port model: half|duplex|all")
	tau := fs.Float64("tau", exp.IPSC.Tau, "start-up time")
	tc := fs.Float64("tc", exp.IPSC.Tc, "per-element transfer time")
	ip := fs.Float64("ip", exp.IPSC.InternalPacket, "internal packet size (0 = unlimited)")
	src := fs.Int("s", 0, "source node")
	gantt := fs.Bool("gantt", false, "render a per-link Gantt timeline of the busiest links")
	plannerFn := faultFlags(fs)
	fs.Parse(args)

	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pm, err := parsePort(*port)
	if err != nil {
		return err
	}
	plan, err := plannerFn(*n, cube.NodeID(*src))
	if err != nil {
		return err
	}
	cfg := sim.Config{Dim: *n, Model: pm, Tau: *tau, Tc: *tc, InternalPacket: *ip, Faults: plan}
	if plan != nil {
		fmt.Printf("faults: %v\n", plan)
	}
	res, err := core.SimBroadcast(a, cube.NodeID(*src), *m, *b, cfg)
	if err != nil {
		return err
	}
	s := trace.Summarize(res)
	fmt.Printf("%v broadcast on %d-cube (%v): %s\n", a, *n, pm, s)
	if *gantt {
		xs, err := core.BroadcastSchedule(a, cube.NodeID(*src), *m, *b, cfg)
		if err != nil {
			return err
		}
		fmt.Print(trace.Gantt(xs, res, 72, 16))
	}
	p := model.Params{N: *n, M: *m, B: *b, Tau: *tau, Tc: *tc}
	fmt.Printf("model: T=%.2f  B_opt=%.1f  T_min=%.2f\n",
		model.BroadcastTime(a, pm, p), model.BroadcastBopt(a, pm, p), model.BroadcastTmin(a, pm, p))
	return nil
}

func cmdScatter(args []string) error {
	fs := flag.NewFlagSet("scatter", flag.ExitOnError)
	alg := fs.String("alg", "bst", "algorithm: sbt|bst|tcbt")
	n := fs.Int("n", 7, "cube dimension")
	m := fs.Float64("m", 1024, "elements per destination")
	b := fs.Float64("b", 1024, "packet size in elements")
	port := fs.String("port", "half", "port model: half|duplex|all")
	orderS := fs.String("order", "df", "destination order: desc|df|rbf")
	rr := fs.Bool("rr", true, "round-robin across subtrees (false = port-oriented)")
	overlap := fs.Float64("overlap", 0.2, "send/receive overlap fraction")
	src := fs.Int("s", 0, "source node")
	plannerFn := faultFlags(fs)
	fs.Parse(args)

	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	pm, err := parsePort(*port)
	if err != nil {
		return err
	}
	plan, err := plannerFn(*n, cube.NodeID(*src))
	if err != nil {
		return err
	}
	var order sched.Order
	switch strings.ToLower(*orderS) {
	case "desc":
		order = sched.OrderDescending
	case "df":
		order = sched.OrderDF
	case "rbf":
		order = sched.OrderRBF
	default:
		return fmt.Errorf("unknown order %q", *orderS)
	}
	il := sched.PortOriented
	if *rr {
		il = sched.RoundRobin
	}
	cfg := sim.Config{
		Dim: *n, Model: pm, Tau: exp.IPSC.Tau, Tc: exp.IPSC.Tc,
		Overlap: *overlap, InternalPacket: exp.IPSC.InternalPacket, Faults: plan,
	}
	if plan != nil {
		fmt.Printf("faults: %v\n", plan)
	}
	res, err := core.SimScatter(a, cube.NodeID(*src), *m, *b, order, il, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%v scatter on %d-cube (%v, %v, %v): %s\n",
		a, *n, pm, order, il, trace.Summarize(res))
	return nil
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	alg := fs.String("alg", "bst", "structure: hp|sbt|bst|tcbt")
	n := fs.Int("n", 5, "cube dimension")
	src := fs.Int("s", 0, "root node")
	render := fs.String("render", "", "render mode: ascii|dot|hist (default: stats only)")
	fs.Parse(args)

	a, err := parseAlg(*alg)
	if err != nil {
		return err
	}
	topo, err := core.TopologyFor(a, *n, cube.NodeID(*src))
	if err != nil {
		return err
	}
	t, err := topo.Tree()
	if err != nil {
		return err
	}
	maxFan, _ := t.MaxFanout()
	fmt.Printf("%v spanning structure of the %d-cube rooted at %d\n", a, *n, *src)
	fmt.Printf("nodes=%d height=%d max fanout=%d\n", t.Size(), t.Height(), maxFan)
	fmt.Printf("level populations: %v\n", t.LevelCounts())
	fmt.Printf("root subtree sizes: %v\n", t.RootSubtreeSizes())
	switch *render {
	case "":
	case "ascii":
		fmt.Print(vis.ASCIITree(t, nil))
	case "dot":
		fmt.Print(vis.DOT(topo.Name, []*tree.Tree{t}, nil))
	case "hist":
		fmt.Print(vis.LevelHistogram(t))
	default:
		return fmt.Errorf("unknown render mode %q", *render)
	}
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	n := fs.Int("n", 6, "cube dimension")
	fs.Parse(args)

	a, err := exp.AblateMSBTLabels(*n, 6)
	if err != nil {
		return err
	}
	fmt.Println(a)
	b, err := exp.AblateScatterOrder(*n, 4, 16)
	if err != nil {
		return err
	}
	fmt.Println(b)
	c, err := exp.AblateSBTScatterInterleave(*n, 32, 0.2)
	if err != nil {
		return err
	}
	fmt.Println(c)
	fmt.Println(exp.AblateBalance(*n))
	measured, formula, err := exp.AblatePacketSize(*n, 4096, 100, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s measured=%-9.0f formula=%-9.1f (MSBT broadcast B_opt)\n",
		"packet-size sweep vs closed form", measured, formula)
	delays, err := exp.AblateTreeChoiceBroadcast(*n)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s SBT=%d TCBT=%d MSBT=%d HP=%d (one-packet delay, steps)\n",
		"tree choice for broadcast", delays["SBT"], delays["TCBT"], delays["MSBT"], delays["HP"])
	if err := exp.EdgeDisjointnessCheck(*n, 0); err != nil {
		return err
	}
	fmt.Printf("%-34s verified for n=%d\n", "ERSBT edge-disjointness", *n)
	return nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	n := fs.Int("n", 10, "cube dimension (even for transpose/bit-reversal symmetry)")
	m := fs.Float64("m", 8, "message size in elements")
	permS := fs.String("perm", "bitrev", "permutation: bitrev|transpose|random")
	seed := fs.Int64("seed", 1, "random seed for Valiant intermediates / random permutation")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	var p route.Permutation
	switch strings.ToLower(*permS) {
	case "bitrev":
		p = route.BitReversal(*n)
	case "transpose":
		var err error
		p, err = route.Transpose(*n)
		if err != nil {
			return err
		}
	case "random":
		p = route.Random(*n, rng)
	default:
		return fmt.Errorf("unknown permutation %q", *permS)
	}
	cfg := sim.Config{Dim: *n, Model: model.AllPorts, Tau: 0.01, Tc: 1}
	xe, err := route.ECube(*n, p, *m)
	if err != nil {
		return err
	}
	te, ce, err := route.Measure(cfg, xe)
	if err != nil {
		return err
	}
	xv, err := route.Valiant(*n, p, *m, rng)
	if err != nil {
		return err
	}
	tv, cv, err := route.Measure(cfg, xv)
	if err != nil {
		return err
	}
	fmt.Printf("%s permutation on %d-cube, %g elements/message:\n", *permS, *n, *m)
	fmt.Printf("  e-cube : congestion=%-4d makespan=%.2f\n", ce, te)
	fmt.Printf("  valiant: congestion=%-4d makespan=%.2f\n", cv, tv)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	n := fs.Int("n", 5, "cube dimension")
	src := fs.Int("s", 0, "source node")
	plannerFn := faultFlags(fs)
	fs.Parse(args)

	plan, err := plannerFn(*n, cube.NodeID(*src))
	if err != nil {
		return err
	}
	if plan != nil {
		return verifyFaulty(*n, cube.NodeID(*src), plan)
	}

	N := 1 << uint(*n)
	s := cube.NodeID(*src)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)

	check := func(name string, got [][]byte, want func(i int) []byte) error {
		for i, g := range got {
			if !bytes.Equal(g, want(i)) {
				return fmt.Errorf("%s: node %d holds wrong data", name, i)
			}
		}
		fmt.Printf("ok  %-14s all %d nodes verified\n", name, N)
		return nil
	}

	for _, a := range []model.Algorithm{model.HP, model.SBT, model.BST, model.TCBT} {
		topo, err := core.TopologyFor(a, *n, s)
		if err != nil {
			return err
		}
		got, err := core.Broadcast(topo, data)
		if err != nil {
			return err
		}
		if err := check("broadcast/"+a.String(), got, func(int) []byte { return data }); err != nil {
			return err
		}
	}
	got, err := core.BroadcastMSBT(*n, s, data)
	if err != nil {
		return err
	}
	if err := check("broadcast/MSBT", got, func(int) []byte { return data }); err != nil {
		return err
	}

	personal := make([][]byte, N)
	for i := range personal {
		personal[i] = []byte(fmt.Sprintf("payload-%d", i))
	}
	for _, a := range []model.Algorithm{model.SBT, model.BST} {
		topo, err := core.TopologyFor(a, *n, s)
		if err != nil {
			return err
		}
		got, err := core.Scatter(topo, personal, 4)
		if err != nil {
			return err
		}
		if err := check("scatter/"+a.String(), got, func(i int) []byte { return personal[i] }); err != nil {
			return err
		}
	}
	fmt.Println("all distributed collectives verified")
	return nil
}

// verifyFaulty exercises the fault-tolerant collectives end to end on the
// goroutine runtime under the injected plan: a liveness probe, the
// redundant multi-tree broadcast (full payload down all n edge-disjoint
// ERSBTs, first checksum-valid copy accepted) and the personalized
// communication over the pruned/regrafted balanced tree.
func verifyFaulty(n int, s cube.NodeID, plan *fault.Plan) error {
	if plan.NodeDead(s) {
		return fmt.Errorf("the fault plan killed source %d; choose another source or seed", s)
	}
	fmt.Printf("faults: %v\n", plan)
	N := 1 << uint(n)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	personal := make([][]byte, N)
	for i := range personal {
		personal[i] = []byte(fmt.Sprintf("payload-%d", i))
	}
	live := plan.Liveness()
	bstParent := func(i cube.NodeID) (cube.NodeID, bool) { return bst.Parent(n, i, s) }
	// Reachability through live links — reported in the summary; the
	// broadcast's delivery promise is the stricter ERSBT-path test below.
	reach, err := fault.Regraft(n, s, bstParent, live, plan.LinkDead)
	if err != nil {
		return err
	}
	// ScatterFT regrafts around dead nodes only (the mask is its input),
	// so its delivery promise is membership of this tree.
	scatterTree, err := fault.Regraft(n, s, bstParent, live, nil)
	if err != nil {
		return err
	}

	type outcome struct {
		probed     int
		bcast      []byte
		bcastErr   error
		scatter    []byte
		scatterErr error
	}
	results := make([]*outcome, N)
	err = comm.RunFaulty(n, plan.Injector(), func(c *comm.Comm) error {
		var o outcome
		probed, err := c.ProbeLiveness(comm.FTOptions{})
		if err != nil {
			return err
		}
		o.probed = probed.LiveCount()
		o.bcast, o.bcastErr = c.BcastFT(s, data, comm.FTOptions{})
		o.scatter, o.scatterErr = c.ScatterFT(s, personal, live, comm.FTOptions{})
		results[c.Rank()] = &o
		return nil
	})
	if err != nil {
		return err
	}

	delivered := 0
	structural := plan.RuleCount() == 0
	// ScatterFT routes around dead nodes (its input is the liveness mask);
	// under dead links or message rules its failures are legitimate.
	nodeOnly := structural && len(plan.DeadLinks()) == 0
	for i := 0; i < N; i++ {
		id := cube.NodeID(i)
		o := results[i]
		if o == nil {
			if live.Alive(id) {
				return fmt.Errorf("live rank %d never ran", id)
			}
			continue
		}
		if o.bcastErr == nil {
			if !bytes.Equal(o.bcast, data) {
				return fmt.Errorf("rank %d accepted a wrong broadcast payload", id)
			}
			delivered++
		} else if structural && bcastDeliverable(n, s, id, plan) {
			return fmt.Errorf("rank %d failed the redundant broadcast despite a live ERSBT path: %v", id, o.bcastErr)
		}
		if o.scatterErr != nil && nodeOnly {
			return fmt.Errorf("rank %d scatter: %v", id, o.scatterErr)
		}
		if o.scatterErr == nil && scatterTree.Contains(id) && !bytes.Equal(o.scatter, personal[i]) {
			return fmt.Errorf("rank %d got scatter payload %q", id, o.scatter)
		}
	}
	fmt.Printf("ok  probe+bcastft+scatterft  %d/%d ranks hold the broadcast payload (%d live, %d reachable)\n",
		delivered, N, live.LiveCount(), reach.Size())
	return nil
}

// bcastDeliverable reports whether at least one of the n edge-disjoint
// ERSBT paths from source to id survives the plan — BcastFT's exact
// delivery promise. It is stricter than cube connectivity: the broadcast
// forwards along the fixed trees, so a dead relay severs its subtree in
// that tree even when the cube stays connected around it.
func bcastDeliverable(n int, s, id cube.NodeID, plan *fault.Plan) bool {
	if id == s {
		return true
	}
	for j := 0; j < n; j++ {
		i, alive := id, true
		for {
			p, ok := msbt.Parent(n, j, i, s)
			if !ok {
				break
			}
			if plan.NodeDead(p) || plan.LinkDead(p, i) {
				alive = false
				break
			}
			i = p
		}
		if alive {
			return true
		}
	}
	return false
}
