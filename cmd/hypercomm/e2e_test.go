package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLaunchEightProcessCube builds the hypercomm binary and runs
// `launch -n 3`: eight real OS processes, one cube node each, every
// link a TCP socket. Every rank must verify the MSBT broadcast and the
// BST scatter payloads and report OK.
func TestLaunchEightProcessCube(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 9 processes")
	}
	bin := filepath.Join(t.TempDir(), "hypercomm")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hypercomm: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "launch", "-n", "3", "-m", "4096").CombinedOutput()
	if err != nil {
		t.Fatalf("launch: %v\n%s", err, out)
	}
	text := string(out)
	for i := 0; i < 8; i++ {
		if !strings.Contains(text, "OK "+string(rune('0'+i))+":") {
			t.Errorf("node %d never reported OK:\n%s", i, text)
		}
	}
	if !strings.Contains(text, "launch: 8 processes") {
		t.Errorf("missing launch summary:\n%s", text)
	}
}

// TestServeExplicitPeers exercises the two-terminal workflow in one
// test: two serve processes with fixed ports and an explicit -peers
// list, no launcher in between.
func TestServeExplicitPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 2 processes")
	}
	bin := filepath.Join(t.TempDir(), "hypercomm")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hypercomm: %v\n%s", err, out)
	}
	const a0, a1 = "127.0.0.1:29480", "127.0.0.1:29481"
	peers := a0 + "," + a1
	c0 := exec.Command(bin, "serve", "-n", "1", "-id", "0", "-listen", a0, "-peers", peers)
	c1 := exec.Command(bin, "serve", "-n", "1", "-id", "1", "-listen", a1, "-peers", peers)
	if err := c0.Start(); err != nil {
		t.Fatal(err)
	}
	out1, err1 := c1.CombinedOutput()
	err0 := c0.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("serve pair failed: node0=%v node1=%v\n%s", err0, err1, out1)
	}
	if !strings.Contains(string(out1), "OK 1:") {
		t.Errorf("node 1 never reported OK:\n%s", out1)
	}
}
