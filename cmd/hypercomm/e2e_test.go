package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildHypercomm compiles the CLI into the test's temp dir once.
func buildHypercomm(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hypercomm")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hypercomm: %v\n%s", err, out)
	}
	return bin
}

// TestLaunchEightProcessCube builds the hypercomm binary and runs
// `launch -n 3`: eight real OS processes, one cube node each, every
// link a socket. Every rank must verify the MSBT broadcast and the BST
// scatter payloads and report OK. The variants pin both socket
// families plus the self-tuning data plane (autotuned packet sizing
// and striped links) end to end across process boundaries.
func TestLaunchEightProcessCube(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 9 processes")
	}
	bin := buildHypercomm(t)
	cases := []struct {
		name string
		args []string
	}{
		{"tcp", []string{"-transport", "tcp"}},
		{"uds", []string{"-transport", "uds"}},
		{"uds-tuned-striped", []string{"-transport", "uds", "-autotune", "-stripes", "3", "-m", "65536"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"launch", "-n", "3", "-m", "4096"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if err != nil {
				t.Fatalf("launch: %v\n%s", err, out)
			}
			text := string(out)
			for i := 0; i < 8; i++ {
				if !strings.Contains(text, "OK "+string(rune('0'+i))+":") {
					t.Errorf("node %d never reported OK:\n%s", i, text)
				}
			}
			if !strings.Contains(text, "launch: 8 processes") {
				t.Errorf("missing launch summary:\n%s", text)
			}
		})
	}
}

// TestServeExplicitPeers exercises the two-terminal workflow in one
// test: two serve processes with fixed ports and an explicit -peers
// list, no launcher in between.
func TestServeExplicitPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 2 processes")
	}
	bin := buildHypercomm(t)
	const a0, a1 = "127.0.0.1:29480", "127.0.0.1:29481"
	peers := a0 + "," + a1
	c0 := exec.Command(bin, "serve", "-n", "1", "-id", "0", "-listen", a0, "-peers", peers)
	c1 := exec.Command(bin, "serve", "-n", "1", "-id", "1", "-listen", a1, "-peers", peers)
	if err := c0.Start(); err != nil {
		t.Fatal(err)
	}
	out1, err1 := c1.CombinedOutput()
	err0 := c0.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("serve pair failed: node0=%v node1=%v\n%s", err0, err1, out1)
	}
	if !strings.Contains(string(out1), "OK 1:") {
		t.Errorf("node 1 never reported OK:\n%s", out1)
	}
}

// TestChaosEightProcessSurvivesFaults is the multi-process soak from
// the acceptance bar: `chaos -n 3` spawns eight resilient serve
// processes (Unix-domain links — launch's same-host default), each
// running a seeded chaos agent that kills, flaps and
// delays its own live connections while lockstep MSBT broadcast +
// BST scatter/gather rounds flow. The drill itself fails unless every
// rank verified every payload AND at least one fault was actually
// injected mid-run, so a passing exit code is the whole assertion; the
// output checks below just pin the report format.
func TestChaosEightProcessSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 9 processes")
	}
	bin := buildHypercomm(t)
	out, err := exec.Command(bin, "chaos", "-n", "3", "-m", "4096",
		"-for", "1200ms", "-seed", "7", "-min-events", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("chaos drill failed: %v\n%s", err, out)
	}
	text := string(out)
	for i := 0; i < 8; i++ {
		if !strings.Contains(text, "OK "+string(rune('0'+i))+":") {
			t.Errorf("node %d never reported OK:\n%s", i, text)
		}
	}
	if !strings.Contains(text, "CHAOS ") {
		t.Errorf("no injected fault was logged:\n%s", text)
	}
	if !strings.Contains(text, "STATS ") {
		t.Errorf("children ran with -v but printed no STATS line:\n%s", text)
	}
	if !strings.Contains(text, "survived") {
		t.Errorf("missing chaos summary:\n%s", text)
	}
}

// TestJobsMultiProcessService runs the collective-as-a-service drill:
// four OS processes, one cube node each, every process running the svc
// runtime and submitting the identical 12-job 3-tenant mix. The drill
// exits nonzero unless every rank verified every job byte-exactly AND
// the per-job payload metering (aggregated from the children's STATS
// lines) covered every submitted job, so the exit code carries the
// assertion; the checks below pin the report format.
func TestJobsMultiProcessService(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 5 processes")
	}
	bin := buildHypercomm(t)
	out, err := exec.Command(bin, "jobs", "-n", "2", "-jobs", "12", "-tenants", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("jobs drill failed: %v\n%s", err, out)
	}
	text := string(out)
	for i := 0; i < 4; i++ {
		if !strings.Contains(text, "OK "+string(rune('0'+i))+": 12 jobs from 3 tenants verified") {
			t.Errorf("node %d never reported its jobs OK:\n%s", i, text)
		}
	}
	if !strings.Contains(text, "per_job=") {
		t.Errorf("no child printed per-job payload metering:\n%s", text)
	}
	if !strings.Contains(text, "per-job metering covered 12 keys") {
		t.Errorf("missing jobs summary with full metering coverage:\n%s", text)
	}
}

// TestChurnElasticStorm runs the elastic-membership drill: four member
// processes drive root-signed collective rounds while the parent's
// seeded storm crashes one mid-traffic, joins a fresh incarnation back
// into the hole, and drains another. The command exits nonzero unless
// every round either completed byte-exactly on some epoch or failed
// with the typed view-change error and was retried, at least one
// collective was actually interrupted, and every survivor agrees on
// the final view — so the exit code carries the assertion; the output
// checks pin the storm actually happened.
func TestChurnElasticStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 6 processes")
	}
	bin := buildHypercomm(t)
	out, err := exec.Command(bin, "churn", "-n", "2", "-seed", "7",
		"-budget", "1s").CombinedOutput()
	if err != nil {
		t.Fatalf("churn drill failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, marker := range []string{"CRASHED ", "DRAINED ", "DONE 0 ", "survived the seeded storm"} {
		if !strings.Contains(text, marker) {
			t.Errorf("missing %q in the drill output:\n%s", marker, text)
		}
	}
}

// TestChaosKillNodeFailsFastNamingPeer is the budget-exhaustion half
// of the acceptance bar: kill one of the eight processes outright and
// require the run to FAIL fast — survivors exhaust their reconnect
// budgets and name the dead peer — rather than hang. The chaos command
// encodes exactly that verdict (it exits nonzero on a hang, a false
// OK, or an unnamed failure), so again the exit code carries the
// assertion; the wall-clock bound below catches a near-hang that
// squeaks under the command's own generous timeout.
func TestChaosKillNodeFailsFastNamingPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 9 processes")
	}
	bin := buildHypercomm(t)
	start := time.Now()
	out, err := exec.Command(bin, "chaos", "-n", "3", "-m", "4096",
		"-for", "10s", "-kill-node", "5", "-kill-after", "150ms",
		"-budget", "500ms", "-attempts", "20", "-deadline", "2s").CombinedOutput()
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budget-exhaustion drill failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "budget-exhaustion drill passed") {
		t.Errorf("missing drill verdict:\n%s", text)
	}
	if !strings.Contains(text, "link to peer 5 failed") {
		t.Errorf("no survivor named the dead peer 5:\n%s", text)
	}
	if !strings.Contains(text, "budget exhausted") {
		t.Errorf("no survivor reported the exhausted reconnect budget:\n%s", text)
	}
	// Neighbors of the dead node escalate after one budget (~650ms from
	// start) and the cascade finishes well inside a few seconds; 15s of
	// slack still proves "fails fast" against the 10s workload window.
	if elapsed > 15*time.Second {
		t.Errorf("drill took %v — the failure did not propagate fast", elapsed)
	}
}
