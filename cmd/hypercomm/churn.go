// The elastic-membership subcommands: `member` runs ONE rank of an
// elastic mesh in this OS process — a mesh whose population changes at
// runtime — driving root-signed collective rounds and taking runtime
// commands (CRASH / DRAIN / STOP) on stdin; `join` is a late joiner
// that attaches to a running mesh through a dead rank's hole; `drain`
// is a member that leaves gracefully after a delay; and `churn` is the
// seeded storm drill: spawn a cube of member processes, crash one
// mid-traffic, join a fresh incarnation back into the hole, drain
// another, and verify that every collective round either completed
// byte-exactly on some membership epoch or failed with the typed
// view-change error and was retried — never a wrong answer, never a
// hang — and that the run ends with a verified broadcast over the
// final view.
//
// Child protocol (stdout): "ADDR <id> <addr>" then, after the PEERS
// line (or with explicit -peers, immediately), "READY <id> epoch=E";
// "VIEW <id> epoch=E dim=D alive=H drained=H" on every membership
// change;
// and one final verdict line — "DONE", "CRASHED" or "DRAINED" — with
// the completed/vchanged counters. The parent aggregates those lines
// into the drill verdict.
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/cube"
	"repro/internal/member"
	"repro/internal/transport"
)

// ---- round signature ----

// churnSig is the root's round signature: round number, stop flag, the
// cube dimension the root pinned, and a round-determined filler every
// receiver verifies byte-for-byte. The signature carries enough
// identity for followers to deduplicate rounds the root retries after
// a view change, and the dim stamp turns any mixed-dimension
// collective — a root and a follower pinned on different cube sizes —
// into a hard byte mismatch instead of a silent wrong answer.
func churnSig(round int, stop bool, dim int) []byte {
	b := make([]byte, 64)
	binary.BigEndian.PutUint32(b, uint32(round))
	if stop {
		b[4] = 1
	}
	b[5] = byte(dim)
	for i := 6; i < len(b); i++ {
		b[i] = byte(round*31 + i)
	}
	return b
}

// parseChurnSig validates a received signature byte-for-byte against
// the receiver's own pinned dimension and returns its round number and
// stop flag.
func parseChurnSig(data []byte, dim int) (round int, stop bool, err error) {
	if len(data) != 64 {
		return 0, false, fmt.Errorf("round payload is %d bytes, want 64", len(data))
	}
	round = int(binary.BigEndian.Uint32(data))
	stop = data[4] == 1
	if int(data[5]) != dim {
		return 0, false, fmt.Errorf("round %d was signed on a %d-cube but received on a %d-cube — the epoch gate leaked a mixed-dimension collective",
			round, data[5], dim)
	}
	if want := churnSig(round, stop, dim); !bytes.Equal(data, want) {
		return 0, false, fmt.Errorf("round %d payload corrupted", round)
	}
	return round, stop, nil
}

func isViewChangedErr(err error) bool {
	var vce *member.ViewChangedError
	return errors.As(err, &vce)
}

// churnRounds is the drill program every member runs: root-signed
// collective rounds on the pinned view. The role is view-derived —
// whoever is the lowest live rank drives the rounds — so the drill
// keeps flowing even if the original root leaves. A view change
// mid-round counts a retry and re-pins; followers deduplicate the
// root's replays by round number.
func churnRounds(s *comm.Session, st *memberStats, stopNow func() bool) error {
	last := -1
	round := 0
	graceLeft := -1
	for {
		vc, err := s.Pin()
		if err != nil {
			return err
		}
		if vc.Rank() == vc.Root() {
			if graceLeft < 0 && stopNow() {
				// Two further rounds on the then-current view make the stop
				// round itself a verified broadcast over the final view.
				graceLeft = 2
			}
			stop := graceLeft == 0
			payload := churnSig(round, stop, vc.View().Dim)
			if err := churnRootRound(vc, payload); err != nil {
				if isViewChangedErr(err) {
					st.vchanged++
					continue // retry the SAME round on the new view
				}
				return err
			}
			st.completed++
			round++
			if graceLeft > 0 {
				graceLeft--
			}
			if stop {
				return nil
			}
			continue
		}
		data, err := vc.Bcast(nil)
		if isViewChangedErr(err) {
			st.vchanged++
			continue
		}
		if err != nil {
			return err
		}
		r, stop, err := parseChurnSig(data, vc.View().Dim)
		if err != nil {
			return fmt.Errorf("rank %d: %w", vc.Rank(), err)
		}
		_, err = vc.Gather(data)
		if isViewChangedErr(err) {
			st.vchanged++
			continue
		}
		if err != nil {
			return err
		}
		if r != last {
			st.completed++
			last = r
			round = r + 1 // continue the numbering if promoted to root
		}
		if stop {
			return nil
		}
	}
}

// churnRootRound drives one round at the root: broadcast the signature,
// gather every live rank's echo, verify byte-exact delivery.
func churnRootRound(vc *comm.ViewComm, payload []byte) error {
	if _, err := vc.Bcast(payload); err != nil {
		return err
	}
	sums, err := vc.Gather(payload)
	if err != nil {
		return err
	}
	for r := 0; r < vc.Size(); r++ {
		if !vc.View().Alive(cube.NodeID(r)) {
			continue
		}
		if !bytes.Equal(sums[r], payload) {
			return fmt.Errorf("rank %d echoed %d bytes, want the %d-byte signature",
				r, len(sums[r]), len(payload))
		}
	}
	return nil
}

type memberStats struct {
	completed int64 // rounds finished (deduplicated)
	vchanged  int64 // view-change retries observed
}

// viewMasks packs a view into alive/drained rank bitmasks (the member
// subcommands cap the dimension at 6, so 64 bits always fit).
func viewMasks(v member.View) (alive, drained uint64) {
	for r := 0; r < v.Size() && r < 64; r++ {
		switch v.Stat[r] {
		case member.Alive:
			alive |= 1 << uint(r)
		case member.Drained:
			drained |= 1 << uint(r)
		}
	}
	return alive, drained
}

// isExpectedMemberExit accepts the ways a crashed or drained rank's
// program legitimately ends: the transport torn down underneath it, or
// its own rank leaving the view.
func isExpectedMemberExit(err error) bool {
	s := err.Error()
	for _, needle := range []string{
		"machine stopped", "connection lost", "is not alive in view",
		"transport is closed", "closed",
	} {
		if strings.Contains(s, needle) {
			return true
		}
	}
	return false
}

// ---- the member / join / drain child ----

func cmdMember(args []string) error {
	return memberMain("member", args, false, 0)
}

func cmdJoin(args []string) error {
	return memberMain("join", args, true, 0)
}

func cmdDrain(args []string) error {
	return memberMain("drain", args, false, 2*time.Second)
}

func memberMain(name string, args []string, joinDefault bool, drainDefault time.Duration) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	n := fs.Int("n", 2, "cube dimension")
	id := fs.Int("id", 0, "rank this process hosts")
	listen := fs.String("listen", "", "listen address (tcp default 127.0.0.1:0; uds default = fresh socket path)")
	peersS := fs.String("peers", "", "comma-separated listen addresses in rank order; EMPTY entries mark dead ranks' holes (empty flag = stdio ADDR/PEERS handshake)")
	transportS := fs.String("transport", "auto", "socket family: tcp, uds, or auto (uds under the stdio handshake, tcp with -peers)")
	join := fs.Bool("join", joinDefault, "attach as a late joiner through a hole in a running mesh instead of founding it")
	runFor := fs.Duration("for", 2*time.Minute, "root only: stop the mesh after this long (0 = only a STOP command stops it)")
	drainAfter := fs.Duration("drain-after", drainDefault, "leave gracefully (drain) this long after attaching (0 = stay)")
	attempts := fs.Int("attempts", 4, "reconnect attempts per outage before the peer is declared dead")
	budget := fs.Duration("budget", 2*time.Second, "reconnect budget per outage — the crash-detection latency")
	verbose := fs.Bool("v", false, "log membership diagnostics to stderr")
	fs.Parse(args)

	N := 1 << uint(*n)
	if *n < 1 || *n > 6 {
		return fmt.Errorf("%s: dimension %d outside 1..6", name, *n)
	}
	if *id < 0 || *id >= N {
		return fmt.Errorf("%s: rank %d outside the %d-cube", name, *id, *n)
	}
	var network string
	switch *transportS {
	case "tcp":
		network = "tcp"
	case "uds":
		network = "unix"
	case "auto":
		if *peersS == "" {
			network = "unix"
		} else {
			network = "tcp"
		}
	default:
		return fmt.Errorf("%s: unknown -transport %q (want tcp, uds or auto)", name, *transportS)
	}
	if *join && *peersS == "" {
		return fmt.Errorf("%s: a joiner needs an explicit -peers list (the stdio handshake only founds meshes)", name)
	}

	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "member %d: "+format+"\n", append([]any{*id}, a...)...)
		}
	}
	// stdout carries the line protocol the churn parent parses; VIEW
	// lines arrive from transport goroutines, so serialize the writes.
	var outMu sync.Mutex
	say := func(format string, a ...any) {
		outMu.Lock()
		fmt.Printf(format+"\n", a...)
		outMu.Unlock()
	}

	e, err := comm.NewElastic(comm.ElasticOptions{
		Dim: *n, Self: cube.NodeID(*id), Join: *join,
		Network: network,
		Listen:  *listen,
		Resilience: transport.ResilienceOptions{
			Enabled:     true,
			MaxAttempts: *attempts,
			Budget:      *budget,
		},
		HandshakeTimeout: 30 * time.Second,
		Logf:             logf,
	})
	if err != nil {
		return err
	}
	defer e.Close()

	sc := bufio.NewScanner(os.Stdin)
	var peers []string
	if *peersS != "" {
		peers = strings.Split(*peersS, ",")
		if len(peers) != N {
			return fmt.Errorf("%s: -peers lists %d addresses, a %d-cube has %d nodes", name, len(peers), *n, N)
		}
	} else {
		say("ADDR %d %s", *id, e.Addr())
		if !sc.Scan() {
			return fmt.Errorf("%s: stdin closed before the PEERS line arrived", name)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 1+N || fields[0] != "PEERS" {
			return fmt.Errorf("%s: want %q line with %d addresses, got %q", name, "PEERS", N, sc.Text())
		}
		peers = fields[1:]
	}

	if *join {
		if err := e.Join(peers, 30*time.Second); err != nil {
			return err
		}
	} else if err := e.Connect(peers); err != nil {
		return err
	}

	e.Manager().Subscribe(func(v member.View) {
		alive, drained := viewMasks(v)
		say("VIEW %d epoch=%d dim=%d alive=%x drained=%x", *id, v.Epoch(), v.Dim, alive, drained)
	})
	say("READY %d epoch=%d", *id, e.Manager().Epoch())

	var crashed, draining, stopFlag atomic.Bool
	leave := func() {
		if draining.CompareAndSwap(false, true) {
			go e.Drain(300 * time.Millisecond)
		}
	}
	// Runtime commands from the parent (the same scanner that carried the
	// handshake — it may have buffered ahead of the PEERS line).
	go func() {
		for sc.Scan() {
			switch strings.TrimSpace(sc.Text()) {
			case "CRASH":
				crashed.Store(true)
				e.Crash()
			case "DRAIN":
				leave()
			case "FLAP":
				// One transient link flap (the grow drill's churn variant):
				// the resilient link heals within its budget, so the view
				// must NOT change — only the epoch gate is being stressed.
				e.Transport().StartChaos(transport.ChaosOptions{
					Seed:   int64(*id) + 1,
					Kinds:  []transport.ChaosKind{transport.ChaosFlap},
					Hold:   400 * time.Millisecond,
					Events: 1,
					Log:    logf,
				})
			case "STOP":
				stopFlag.Store(true)
			}
		}
	}()
	if *drainAfter > 0 {
		t := time.AfterFunc(*drainAfter, leave)
		defer t.Stop()
	}

	start := time.Now()
	st := &memberStats{}
	runErr := e.Run(func(s *comm.Session) error {
		return churnRounds(s, st, func() bool {
			return stopFlag.Load() || (*runFor > 0 && time.Since(start) > *runFor)
		})
	})

	v := e.Manager().View()
	alive, drained := viewMasks(v)
	tail := fmt.Sprintf("completed=%d vchanged=%d epoch=%d dim=%d alive=%x drained=%x",
		st.completed, st.vchanged, v.Epoch(), v.Dim, alive, drained)
	switch {
	case crashed.Load():
		say("CRASHED %d %s", *id, tail)
		return nil // a crashed rank's torn-down program is the point
	case draining.Load():
		if runErr != nil && !isExpectedMemberExit(runErr) {
			return fmt.Errorf("%s: drained rank's program failed oddly: %w", name, runErr)
		}
		say("DRAINED %d %s", *id, tail)
		return nil
	case runErr != nil:
		return runErr
	}
	say("DONE %d %s", *id, tail)
	return nil
}

// ---- the churn drill parent ----

// finalRec is one child's parsed verdict line.
type finalRec struct {
	verb      string // DONE, CRASHED or DRAINED
	completed int64
	vchanged  int64
	epoch     uint64
	dim       int64
	alive     uint64
	drained   uint64
}

// churnWatch aggregates the children's protocol lines for the parent's
// storm scheduling (latest VIEW per node) and verdict (final lines).
type churnWatch struct {
	mu     sync.Mutex
	ready  map[int]bool
	views  map[int]finalRec   // latest VIEW per node (verb unused)
	finals map[int][]finalRec // DONE/CRASHED/DRAINED, in arrival order
}

func newChurnWatch() *churnWatch {
	return &churnWatch{
		ready:  make(map[int]bool),
		views:  make(map[int]finalRec),
		finals: make(map[int][]finalRec),
	}
}

// parseRec parses the "completed=... vchanged=... epoch=... alive=...
// drained=..." tail shared by VIEW and verdict lines (missing keys stay
// zero — VIEW lines carry no counters).
func parseRec(verb string, fields []string) finalRec {
	rec := finalRec{verb: verb}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "completed":
			rec.completed, _ = strconv.ParseInt(v, 10, 64)
		case "vchanged":
			rec.vchanged, _ = strconv.ParseInt(v, 10, 64)
		case "epoch":
			rec.epoch, _ = strconv.ParseUint(v, 10, 64)
		case "dim":
			rec.dim, _ = strconv.ParseInt(v, 10, 64)
		case "alive":
			rec.alive, _ = strconv.ParseUint(v, 16, 64)
		case "drained":
			rec.drained, _ = strconv.ParseUint(v, 16, 64)
		}
	}
	return rec
}

func (w *churnWatch) add(node int, line string) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[1] != fmt.Sprint(node) {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch fields[0] {
	case "READY":
		w.ready[node] = true
	case "VIEW":
		w.views[node] = parseRec("VIEW", fields[2:])
	case "DONE", "CRASHED", "DRAINED":
		w.finals[node] = append(w.finals[node], parseRec(fields[0], fields[2:]))
	}
}

// waitFor polls pred (called under the watch lock) until it holds or
// the timeout expires.
func (w *churnWatch) waitFor(timeout time.Duration, pred func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		w.mu.Lock()
		ok := pred()
		w.mu.Unlock()
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cmdChurn is the seeded elastic-membership storm: spawn a cube of
// member processes, crash one mid-traffic, join a fresh incarnation
// back into the hole, drain another, stop, and aggregate the children's
// self-verdicts. The drill fails unless every process exits clean,
// every survivor completed rounds, at least one collective was
// interrupted by a view change and retried, and every survivor's final
// view agrees: everyone alive except the drained rank.
func cmdChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	n := fs.Int("n", 2, "cube dimension (spawns 2^n member processes plus one joiner)")
	seed := fs.Int64("seed", 1, "seed for the storm's victim choices")
	attempts := fs.Int("attempts", 4, "children: reconnect attempts before a peer is declared dead")
	budget := fs.Duration("budget", 2*time.Second, "children: reconnect budget per outage — the crash-detection latency")
	transportS := fs.String("transport", "auto", "socket family the children link over: tcp, uds, or auto (same-host drill = uds)")
	verbose := fs.Bool("v", false, "children log membership diagnostics to stderr")
	fs.Parse(args)

	if *n < 2 || *n > 6 {
		return fmt.Errorf("churn: dimension %d outside 2..6 (the storm needs distinct crash and drain victims)", *n)
	}
	family := *transportS
	if family == "auto" {
		family = "uds" // the drill deploys on this host
	}
	N := 1 << uint(*n)
	childArgs := func(i int) []string {
		a := []string{"member", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(i),
			"-transport", family, "-attempts", fmt.Sprint(*attempts),
			"-budget", budget.String(), "-for", "2m"}
		if *verbose {
			a = append(a, "-v")
		}
		return a
	}
	procs, peers, killAll, err := spawnCube(N, childArgs, true)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}

	w := newChurnWatch()
	var wg sync.WaitGroup
	relay := func(node int, p *cubeProc) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p.out.Scan() {
				line := p.out.Text()
				w.add(node, line)
				fmt.Printf("[node %d] %s\n", node, line)
			}
		}()
	}
	for i, p := range procs {
		relay(i, p)
	}
	fail := func(format string, a ...any) error {
		killAll()
		for i, p := range procs {
			if p.stderr != nil && p.stderr.Len() > 0 {
				fmt.Printf("---- node %d stderr ----\n%s", i, p.stderr.String())
			}
		}
		return fmt.Errorf("churn: "+format, a...)
	}
	command := func(p *cubeProc, cmd string) {
		// A write to an already-dead child just fails; the storm moves on.
		p.in.WriteString(cmd + "\n")
		p.in.Flush()
	}

	if !w.waitFor(30*time.Second, func() bool { return len(w.ready) == N }) {
		return fail("only %d/%d members became READY", len(w.ready), N)
	}
	detect := 3**budget + 20*time.Second

	// Storm step 1: crash a non-root rank mid-traffic. Survivors burn
	// their reconnect budgets, declare it dead, repair the tree, and keep
	// completing rounds on the shrunken view.
	rng := rand.New(rand.NewSource(*seed))
	crashV := 1 + rng.Intn(N-1)
	time.Sleep(300 * time.Millisecond) // let pre-churn rounds complete
	fmt.Printf("churn: crashing rank %d\n", crashV)
	command(procs[crashV], "CRASH")
	if !w.waitFor(detect, func() bool {
		v, ok := w.views[0]
		return ok && v.alive&(1<<uint(crashV)) == 0
	}) {
		return fail("rank 0 never saw the crash of rank %d", crashV)
	}
	time.Sleep(300 * time.Millisecond) // post-crash rounds on the repaired view

	// Storm step 2: a fresh incarnation joins back through the hole.
	joinPeers := append([]string(nil), peers...)
	joinPeers[crashV] = ""
	exe, err := os.Executable()
	if err != nil {
		return fail("%v", err)
	}
	fmt.Printf("churn: joining a fresh rank %d into the hole\n", crashV)
	jArgs := []string{"join", "-n", fmt.Sprint(*n), "-id", fmt.Sprint(crashV),
		"-transport", family, "-attempts", fmt.Sprint(*attempts),
		"-budget", budget.String(), "-for", "2m",
		"-peers", strings.Join(joinPeers, ",")}
	if *verbose {
		jArgs = append(jArgs, "-v")
	}
	jCmd := exec.Command(exe, jArgs...)
	joiner := &cubeProc{cmd: jCmd, stderr: &bytes.Buffer{}}
	jCmd.Stderr = joiner.stderr
	jIn, err1 := jCmd.StdinPipe()
	jOut, err2 := jCmd.StdoutPipe()
	if err1 != nil || err2 != nil {
		return fail("wiring the joiner: %v %v", err1, err2)
	}
	joiner.in = bufio.NewWriter(jIn)
	if err := jCmd.Start(); err != nil {
		return fail("starting the joiner: %v", err)
	}
	kill0 := killAll
	killAll = func() {
		kill0()
		if jCmd.Process != nil {
			jCmd.Process.Kill()
		}
	}
	joiner.out = bufio.NewScanner(jOut)
	joiner.out.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	relay(crashV, joiner)
	if !w.waitFor(30*time.Second, func() bool {
		v, ok := w.views[0]
		return ok && v.alive&(1<<uint(crashV)) != 0
	}) {
		return fail("the reborn rank %d was never admitted", crashV)
	}
	time.Sleep(300 * time.Millisecond) // post-join rounds on the regrown view

	// Storm step 3: drain another rank gracefully (Drained, not Dead).
	cands := make([]int, 0, N)
	for r := 1; r < N; r++ {
		if r != crashV {
			cands = append(cands, r)
		}
	}
	drainV := cands[rng.Intn(len(cands))]
	fmt.Printf("churn: draining rank %d\n", drainV)
	command(procs[drainV], "DRAIN")
	if !w.waitFor(detect, func() bool {
		v, ok := w.views[0]
		return ok && v.drained&(1<<uint(drainV)) != 0
	}) {
		return fail("rank 0 never saw the drain of rank %d", drainV)
	}
	time.Sleep(300 * time.Millisecond) // post-drain rounds on the final view

	// Stop: the root runs two more rounds on the final view — the
	// post-storm verified broadcast — then signs the stop round.
	command(procs[0], "STOP")

	all := append(append([]*cubeProc(nil), procs...), joiner)
	exits := make(chan error, len(all))
	for _, p := range all {
		go func(p *cubeProc) { exits <- p.cmd.Wait() }(p)
	}
	for range all {
		select {
		case err := <-exits:
			if err != nil {
				return fail("a member process exited nonzero: %v", err)
			}
		case <-time.After(90 * time.Second):
			return fail("member processes still running 90s after STOP — the drill hung")
		}
	}
	wg.Wait()

	// Verdict. Every storm victim reported the right verb; every
	// survivor's DONE agrees on the final view; rounds completed
	// everywhere; at least one collective was interrupted and retried.
	final := func(node, gen int, wantVerb string) (finalRec, error) {
		recs := w.finals[node]
		if gen >= len(recs) {
			return finalRec{}, fmt.Errorf("node %d printed no verdict line %d", node, gen)
		}
		if recs[gen].verb != wantVerb {
			return finalRec{}, fmt.Errorf("node %d verdict %d is %s, want %s", node, gen, recs[gen].verb, wantVerb)
		}
		return recs[gen], nil
	}
	var totalVC, totalRounds int64
	crashRec, err := final(crashV, 0, "CRASHED")
	if err != nil {
		return fail("%v", err)
	}
	drainRec, err := final(drainV, 0, "DRAINED")
	if err != nil {
		return fail("%v", err)
	}
	if drainRec.completed == 0 {
		return fail("the drained rank completed no rounds before leaving")
	}
	totalVC += crashRec.vchanged + drainRec.vchanged
	totalRounds += crashRec.completed + drainRec.completed

	wantAlive := (uint64(1)<<uint(N) - 1) &^ (1 << uint(drainV))
	wantDrained := uint64(1) << uint(drainV)
	survivors := []struct {
		node, gen int
	}{}
	for r := 0; r < N; r++ {
		if r == drainV {
			continue
		}
		gen := 0
		if r == crashV {
			gen = 1 // the reborn incarnation's DONE follows the CRASHED line
		}
		survivors = append(survivors, struct{ node, gen int }{r, gen})
	}
	for _, s := range survivors {
		rec, err := final(s.node, s.gen, "DONE")
		if err != nil {
			return fail("%v", err)
		}
		if rec.completed == 0 {
			return fail("survivor %d completed no rounds", s.node)
		}
		if rec.alive != wantAlive || rec.drained != wantDrained {
			return fail("survivor %d final view alive=%x drained=%x, want alive=%x drained=%x",
				s.node, rec.alive, rec.drained, wantAlive, wantDrained)
		}
		totalVC += rec.vchanged
		totalRounds += rec.completed
	}
	if totalVC == 0 {
		return fail("no collective was ever interrupted by a view change — the storm proved nothing")
	}
	fmt.Printf("churn: %d processes survived the seeded storm (crashed %d, rejoined %d, drained %d): %d round completions, %d view-change retries, final view alive=%x drained=%x\n",
		len(all), crashV, crashV, drainV, totalRounds, totalVC, wantAlive, wantDrained)
	return nil
}
