package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/svc"
)

// bench6Result is one BENCH_6 measurement: the collective service under
// an open-loop Poisson job stream. Unlike the closed-loop goodput
// benches (BENCH_3/BENCH_5), arrivals here do not wait for completions
// — a seeded exponential clock schedules the deterministic MixedJobSpec
// sequence at OfferedPerS jobs/s, and completion latency is measured
// from each job's *scheduled arrival* (queueing delay included), the
// honest open-loop convention. JobsPerS is completed throughput over
// the window from first arrival to last completion.
//
// Fairness: tenants submit interleaved shares of the same mix, so per-
// tenant completions must come out equal (a starved tenant would hang
// its share: admission is FIFO within a tenant, round-robin across
// tenants) and the per-tenant mean latencies should be close; the run
// fails if any tenant's share is incomplete and records the min/max
// mean-latency spread for the benchstat gate to watch.
type bench6Result struct {
	Name        string  `json:"name"`
	Transport   string  `json:"transport"`
	Dim         int     `json:"dim"`
	Jobs        int     `json:"jobs"`
	Tenants     int     `json:"tenants"`
	OfferedPerS float64 `json:"offered_per_s"`

	JobsPerS float64 `json:"jobs_per_s"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`

	TenantCompletions []int   `json:"tenant_completions"`
	TenantMeanMsMin   float64 `json:"tenant_mean_ms_min"`
	TenantMeanMsMax   float64 `json:"tenant_mean_ms_max"`

	WallSeconds float64 `json:"wall_s"`

	PayloadDeliveredBytes int64 `json:"payload_delivered_bytes,omitempty"`
	PerJobKeys            int   `json:"per_job_keys,omitempty"`
}

type bench6File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench6Result `json:"benchmarks"`
}

// runBench6 measures the multi-tenant job runtime (internal/svc) under
// Poisson load on both backends for d=4..maxD: throughput, completion
// latency percentiles and per-tenant fairness.
func runBench6(path string, maxD int) error {
	const (
		jobs    = 240
		tenants = 4
		rate    = 300.0 // offered jobs/s
		seed    = 1986
	)
	out := bench6File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("collective-as-a-service under open-loop Poisson load: %d mixed jobs "+
			"(bcast/scatter/allreduce, roots sweeping the cube, 64..646B payloads) from %d tenants "+
			"offered at %.0f jobs/s to one shared mesh. Latency is completion minus *scheduled* "+
			"arrival (queueing included); jobs_per_s is completed throughput over first-arrival to "+
			"last-completion. tenant_completions must be equal shares (asserted); the per-tenant "+
			"mean-latency spread is recorded for the fairness gate. Single-vCPU container: the "+
			"whole 2^d-endpoint mesh time-shares one core, latency tails are noisy run to run.",
			jobs, tenants, rate),
	}
	for d := 4; d <= maxD; d++ {
		for _, tr := range []string{"inproc", "tcp"} {
			res, err := bench6Measure(tr, d, jobs, tenants, rate, seed)
			if err != nil {
				return err
			}
			out.Benchmarks = append(out.Benchmarks, res)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func bench6Measure(transport string, d, jobs, tenants int, rate float64, seed int64) (bench6Result, error) {
	// Unlimited tenant queues keep the generator truly open-loop: a
	// bounded queue would make Submit block and turn the arrival process
	// closed-loop under backlog.
	opt := svc.Options{TenantQueue: -1}
	cl, err := startBenchCluster(transport, d, opt, comm.TCPRunOptions{})
	if err != nil {
		return bench6Result{}, fmt.Errorf("bench6 %s d=%d: %w", transport, d, err)
	}

	type rec struct {
		tenant  int
		latency time.Duration
		err     error
	}
	recs := make([]rec, jobs)
	rng := rand.New(rand.NewSource(seed))
	var wg sync.WaitGroup
	start := time.Now()
	var offset time.Duration // scheduled arrival of job i, relative to start
	for i := 0; i < jobs; i++ {
		offset += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		sched := start.Add(offset)
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		spec := comm.MixedJobSpec(d, tenants, seed, i)
		h, err := cl.SubmitSpec(spec)
		if err != nil {
			cl.Drain()
			return bench6Result{}, fmt.Errorf("bench6 %s d=%d: submitting job %d: %w", transport, d, i, err)
		}
		wg.Add(1)
		go func(i int, h *comm.ClusterHandle, sched time.Time, tenant int) {
			defer wg.Done()
			err := h.Wait()
			recs[i] = rec{tenant: tenant, latency: time.Since(sched), err: err}
		}(i, h, sched, spec.Tenant)
	}
	wg.Wait()
	wall := time.Since(start)
	stats := cl.Stats()
	if err := cl.Drain(); err != nil {
		return bench6Result{}, fmt.Errorf("bench6 %s d=%d: drain: %w", transport, d, err)
	}

	lat := make([]float64, 0, jobs)
	tenantSum := make([]float64, tenants+1)
	tenantN := make([]int, tenants+1)
	var mean float64
	for i, r := range recs {
		if r.err != nil {
			return bench6Result{}, fmt.Errorf("bench6 %s d=%d: job %d failed: %w", transport, d, i, r.err)
		}
		ms := float64(r.latency) / float64(time.Millisecond)
		lat = append(lat, ms)
		mean += ms
		tenantSum[r.tenant] += ms
		tenantN[r.tenant]++
	}
	mean /= float64(len(lat))
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[min(len(lat)-1, int(p*float64(len(lat))))] }

	res := bench6Result{
		Name: "PoissonMix", Transport: transport, Dim: d,
		Jobs: jobs, Tenants: tenants, OfferedPerS: rate,
		JobsPerS: float64(jobs) / wall.Seconds(),
		P50Ms:    pct(0.50), P99Ms: pct(0.99), MeanMs: mean, MaxMs: lat[len(lat)-1],
		TenantCompletions: tenantN[1:],
		WallSeconds:       wall.Seconds(),
	}
	res.TenantMeanMsMin, res.TenantMeanMsMax = -1, -1
	for t := 1; t <= tenants; t++ {
		// The mix deals jobs round-robin, so every tenant's share is an
		// equal jobs/tenants slice; anything else means starvation or a
		// lost completion.
		if want := jobs / tenants; tenantN[t] != want {
			return res, fmt.Errorf("bench6 %s d=%d: tenant %d completed %d jobs, want %d — unfair or starved",
				transport, d, t, tenantN[t], want)
		}
		m := tenantSum[t] / float64(tenantN[t])
		if res.TenantMeanMsMin < 0 || m < res.TenantMeanMsMin {
			res.TenantMeanMsMin = m
		}
		if m > res.TenantMeanMsMax {
			res.TenantMeanMsMax = m
		}
	}
	if transport == "tcp" {
		res.PayloadDeliveredBytes = stats.PayloadDelivered
		res.PerJobKeys = len(stats.PayloadByJob)
		if res.PerJobKeys < jobs {
			return res, fmt.Errorf("bench6 tcp d=%d: per-job metering covered %d keys, want %d",
				d, res.PerJobKeys, jobs)
		}
	}
	fmt.Printf("Bench6PoissonMix/%s/d=%d %6.1f jobs/s offered %5.1f  p50 %6.2fms  p99 %7.2fms  tenant-mean spread [%5.2f, %5.2f]ms\n",
		transport, d, res.JobsPerS, rate, res.P50Ms, res.P99Ms, res.TenantMeanMsMin, res.TenantMeanMsMax)
	return res, nil
}
