package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/comm"
)

// bench5Result is one BENCH_5 measurement. MBPerS is steady-state
// delivered-payload goodput over SteadySeconds. For TCP rows it is
// computed from the transport's own PayloadDelivered counter — bytes
// the transport actually handed to inboxes, store-and-forward relay
// hops included — not assumed from job size. CollectiveMBPerS is the
// job-arithmetic view (BytesPerRound × Rounds over SteadySeconds,
// payload at final destinations only), directly comparable to
// BENCH_3's rows; for broadcast the two coincide (every node consumes
// what it receives exactly once), for scatter the transport view is
// higher by the average tree depth because intermediate nodes receive
// whole subtree bundles. In-process rows have no transport counters,
// so there MBPerS == CollectiveMBPerS.
type bench5Result struct {
	Name          string  `json:"name"`
	Transport     string  `json:"transport"`
	Dim           int     `json:"dim"`
	Rounds        int     `json:"rounds"`
	BytesPerRound int64   `json:"bytes_per_round"`
	SetupSeconds  float64 `json:"setup_s"`
	SteadySeconds float64 `json:"steady_s"`
	WallSeconds   float64 `json:"wall_s"`
	MBPerS        float64 `json:"mb_per_s"`
	CollectiveMBS float64 `json:"collective_mb_per_s"`

	WireBytesSent         int64 `json:"wire_bytes_sent,omitempty"`
	WireFramesSent        int64 `json:"wire_frames_sent,omitempty"`
	PayloadDeliveredBytes int64 `json:"payload_delivered_bytes,omitempty"`
	BatchedAcks           int64 `json:"batched_acks,omitempty"`
}

type bench5File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench5Result `json:"benchmarks"`
}

// runBench5 reruns the BENCH_3 jobs (MSBT broadcast, BST scatter;
// same payloads, rounds and dimensions up to maxD) on the wire fast
// path: vectored writes, v2 Castagnoli frames, batched small messages
// and coalesced ACKs. Setup and steady-state time are reported
// separately, and the TCP rows carry the transport's own byte/frame
// counters so the goodput claim is backed by what the transport
// observed, not bench arithmetic alone.
func runBench5(path string, maxD int) error {
	const (
		rounds    = 8
		bcastM    = 64 << 10
		scatterPP = 1 << 10
	)
	out := bench5File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("wire fast path (v2 frames, writev, batching); same jobs as BENCH_3.json, "+
			"%d rounds per job. mb_per_s = payload delivered over the steady-state window: for tcp "+
			"rows from the transport's PayloadDelivered counter (relay hops included), for inproc "+
			"rows from job arithmetic. collective_mb_per_s = BytesPerRound*Rounds/steady_s for all "+
			"rows (final-destination payload only, the BENCH_3-comparable view; identical to "+
			"mb_per_s for broadcast). Mesh dial is reported separately as setup_s. Single-vCPU "+
			"container: the whole 2^d-endpoint mesh time-shares one core, run-to-run variance "+
			"is roughly +/-25 percent at d=8.", rounds),
	}
	for d := 4; d <= maxD; d++ {
		N := 1 << uint(d)
		jobs := []struct {
			name          string
			bytesPerRound int64
			job           func(*comm.Comm) error
		}{
			{"BcastMSBT", int64(bcastM) * int64(N-1), bcastJob(rounds, bcastM)},
			{"ScatterBST", int64(scatterPP) * int64(N-1), scatterJob(rounds, scatterPP)},
		}
		for _, j := range jobs {
			for _, tr := range []string{"inproc", "tcp"} {
				res, err := bench5Measure(j.name, tr, d, rounds, j.bytesPerRound, j.job)
				if err != nil {
					return err
				}
				out.Benchmarks = append(out.Benchmarks, res)
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func bench5Measure(name, transport string, d, rounds int, bytesPerRound int64,
	job func(*comm.Comm) error) (bench5Result, error) {
	m, err := measureMesh(meshSpec{transport: transport, dim: d}, rounds, bytesPerRound, nil, job)
	if err != nil {
		return bench5Result{}, fmt.Errorf("bench5 %s/%s d=%d: %w", name, transport, d, err)
	}
	fmt.Printf("Bench5%s/%s/d=%d setup %7.3fs steady %7.3fs %10.1f MB/s (collective %8.1f MB/s)\n",
		name, transport, d, m.SetupSeconds, m.SteadySeconds, m.MBPerS, m.CollectiveMBPerS)
	res := bench5Result{
		Name: name, Transport: transport, Dim: d, Rounds: rounds,
		BytesPerRound: bytesPerRound,
		SetupSeconds:  m.SetupSeconds, SteadySeconds: m.SteadySeconds, WallSeconds: m.WallSeconds,
		MBPerS: m.MBPerS, CollectiveMBS: m.CollectiveMBPerS,
	}
	if m.HaveStats {
		res.WireBytesSent = m.Stats.BytesSent
		res.WireFramesSent = m.Stats.FramesSent
		res.PayloadDeliveredBytes = m.Stats.PayloadDelivered
		res.BatchedAcks = m.Stats.AcksBatched
		if m.Stats.PayloadDelivered < bytesPerRound*int64(rounds) {
			return res, fmt.Errorf("bench5 %s/tcp d=%d: transport observed %d delivered payload bytes, "+
				"claim needs at least %d", name, d, m.Stats.PayloadDelivered, bytesPerRound*int64(rounds))
		}
	}
	return res, nil
}
