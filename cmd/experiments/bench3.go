package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/comm"
)

// bench3Result is one transport-throughput measurement recorded in
// BENCH_3.json: a collective job of `rounds` back-to-back operations on
// one backend, with mesh setup amortized over the rounds.
type bench3Result struct {
	Name      string `json:"name"`
	Transport string `json:"transport"` // "inproc" or "tcp"
	Dim       int    `json:"dim"`
	Rounds    int    `json:"rounds"`
	// BytesPerRound is delivered payload: what the non-root ranks
	// received, not wire overhead.
	BytesPerRound int64 `json:"bytes_per_round"`
	// SetupSeconds is mesh construction (dial + handshake) time;
	// SteadySeconds is the barrier-bracketed collective window MBPerS is
	// computed over, so TCP goodput is not polluted by handshake cost.
	SetupSeconds  float64 `json:"setup_s"`
	SteadySeconds float64 `json:"steady_s"`
	WallSeconds   float64 `json:"wall_s"`
	MBPerS        float64 `json:"mb_per_s"`
}

// bench3File is the BENCH_3.json schema.
type bench3File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench3Result `json:"benchmarks"`
}

// bench3Runners are the two transport backends under comparison: the
// in-process channel transport and loopback TCP sockets (one endpoint
// per node, checksummed frames). The names dispatch through the shared
// harness (runMesh).
var bench3Runners = []string{"inproc", "tcp"}

// runBench3 measures MSBT broadcast and BST scatter throughput on both
// transports for d = 4..8 and writes the JSON record to path. Each job
// runs rounds collectives back to back inside ONE mesh, so connect
// and teardown cost is amortized — the number approximates steady-state
// collective goodput, not job startup.
func runBench3(path string) error {
	const (
		rounds    = 8
		bcastM    = 64 << 10 // broadcast payload bytes
		scatterPP = 1 << 10  // scatter payload bytes per rank
	)
	out := bench3File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("delivered-payload goodput, %d rounds per job; mb_per_s over the "+
			"barrier-bracketed steady window, mesh dial reported as setup_s; "+
			"tcp = one loopback endpoint per node, wire-framed + CRC", rounds),
	}
	for _, tr := range bench3Runners {
		for d := 4; d <= 8; d++ {
			N := 1 << uint(d)
			bb := int64(bcastM) * int64(N-1)
			res, err := bench3Measure("BcastMSBT", tr, d, rounds, bb, bcastJob(rounds, bcastM))
			if err != nil {
				return err
			}
			out.Benchmarks = append(out.Benchmarks, res)
			sb := int64(scatterPP) * int64(N-1)
			res, err = bench3Measure("ScatterBST", tr, d, rounds, sb, scatterJob(rounds, scatterPP))
			if err != nil {
				return err
			}
			out.Benchmarks = append(out.Benchmarks, res)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// bench3Measure times one job. The steady-state collective window is
// timed by rank 0 between barriers (see steadyTimer); setup — dialing
// the mesh — is reported separately so the goodput number measures
// collectives, not connection establishment.
func bench3Measure(name, transport string, d, rounds int, bytesPerRound int64,
	job func(*comm.Comm) error) (bench3Result, error) {
	m, err := measureMesh(meshSpec{transport: transport, dim: d}, rounds, bytesPerRound, nil, job)
	if err != nil {
		return bench3Result{}, fmt.Errorf("bench3 %s/%s d=%d: %w", name, transport, d, err)
	}
	// BENCH_3's mb_per_s has always been the job-arithmetic view (final-
	// destination payload), even on tcp — keep that.
	fmt.Printf("Bench3%s/%s/d=%d setup %7.3fs steady %7.3fs %12.1f MB/s\n",
		name, transport, d, m.SetupSeconds, m.SteadySeconds, m.CollectiveMBPerS)
	return bench3Result{
		Name: name, Transport: transport, Dim: d, Rounds: rounds,
		BytesPerRound: bytesPerRound,
		SetupSeconds:  m.SetupSeconds, SteadySeconds: m.SteadySeconds,
		WallSeconds: m.WallSeconds, MBPerS: m.CollectiveMBPerS,
	}, nil
}

// bcastJob broadcasts an mbytes payload from rank 0 down the n
// edge-disjoint ERSBTs, rounds times back to back.
func bcastJob(rounds, mbytes int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		data := make([]byte, mbytes)
		for i := range data {
			data[i] = byte(i)
		}
		for r := 0; r < rounds; r++ {
			var in []byte
			if c.Rank() == 0 {
				in = data
			}
			got, err := c.BcastMSBT(0, in)
			if err != nil {
				return err
			}
			if len(got) != mbytes {
				return fmt.Errorf("rank %d round %d: %d bytes, want %d", c.Rank(), r, len(got), mbytes)
			}
		}
		return nil
	}
}

// scatterJob scatters perRank bytes to every rank from root 0 over the
// balanced spanning tree, rounds times back to back.
func scatterJob(rounds, perRank int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		var data [][]byte
		if c.Rank() == 0 {
			data = make([][]byte, c.Size())
			for i := range data {
				data[i] = make([]byte, perRank)
				data[i][0] = byte(i)
			}
		}
		for r := 0; r < rounds; r++ {
			var in [][]byte
			if c.Rank() == 0 {
				in = data
			}
			mine, err := c.Scatter(0, in)
			if err != nil {
				return err
			}
			if len(mine) != perRank || mine[0] != byte(c.Rank()) {
				return fmt.Errorf("rank %d round %d: wrong scatter payload", c.Rank(), r)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	}
}
