package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// benchResult is one named workload's measurement, the unit recorded in
// BENCH_2.json.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	WallSeconds float64 `json:"wall_s"`
	// Trajectory vs the pre-optimization tree (zero when the workload
	// did not exist then — d >= 12 was impractical).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// seedBaseline records the same workloads measured on the tree before the
// hot-path performance pass (cached trees, flat-slice schedules, the
// allocation-free engine): ns/op on the identical machine. Workloads
// absent here were out of reach then.
var seedBaseline = map[string]float64{
	"HeadlineFigure5D10":         47175907973,
	"HeadlineFigure5D10Generate": 1078912787,
	"HeadlineFigure5D10Simulate": 43068630001,
}

// benchFile is the BENCH_2.json schema: environment header plus one entry
// per workload.
type benchFile struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchSpec names a workload and how often to repeat it (heavy workloads
// run fewer measured iterations).
type benchSpec struct {
	name  string
	iters int
	f     func() error
}

// runBench executes the perf suite and writes the JSON record to path.
// Each workload runs once as a warm-up (first-touch page faults and pool
// fills would otherwise dominate a single cold iteration), then iters
// measured times. Results are also printed in Go benchmark format so
// benchstat can consume the output directly.
func runBench(path string) error {
	headline := sim.Config{
		Dim: 10, Model: model.OneSendAndRecv,
		Tau: 1, Tc: 0.001, InternalPacket: 1024,
	}
	const headlineM, headlineB = 60 * 1024, 16

	headlineXS, err := core.BroadcastSchedule(model.SBT, 0, headlineM, headlineB, headline)
	if err != nil {
		return err
	}
	engine := sim.NewEngine()
	allPort12 := sim.Config{Dim: 12, Model: model.AllPorts, Tau: 1, Tc: 0}
	bcast12, err := core.BroadcastSchedule(model.SBT, 0, 64, 1, allPort12)
	if err != nil {
		return err
	}
	onePort10 := sim.Config{Dim: 10, Model: model.OneSendAndRecv, Tau: 1, Tc: 0.001, InternalPacket: 1024}

	specs := []benchSpec{
		{"HeadlineFigure5D10", 3, func() error {
			_, err := core.SimBroadcast(model.SBT, 0, headlineM, headlineB, headline)
			return err
		}},
		{"HeadlineFigure5D10Generate", 3, func() error {
			_, err := core.BroadcastSchedule(model.SBT, 0, headlineM, headlineB, headline)
			return err
		}},
		{"HeadlineFigure5D10Simulate", 3, func() error {
			_, err := engine.Run(headline, headlineXS)
			return err
		}},
		{"EngineBroadcastD12AllPort", 5, func() error {
			_, err := engine.Run(allPort12, bcast12)
			return err
		}},
		{"ScatterSBTD10OnePort", 5, func() error {
			_, err := core.SimScatter(model.SBT, 0, 1024, 1024,
				sched.OrderRBF, sched.PortOriented, onePort10)
			return err
		}},
	}

	out := benchFile{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
	for _, s := range specs {
		r, err := measure(s)
		if err != nil {
			return fmt.Errorf("bench %s: %w", s.name, err)
		}
		if base, ok := seedBaseline[r.Name]; ok {
			r.BaselineNsPerOp = base
			r.Speedup = base / r.NsPerOp
		}
		out.Benchmarks = append(out.Benchmarks, r)
		// Go benchmark format, benchstat-compatible.
		fmt.Printf("Benchmark%s %8d %20.0f ns/op %12.0f allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.AllocsPerOp)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// measure times one workload: a warm-up run, then s.iters measured runs
// with allocation counting.
func measure(s benchSpec) (benchResult, error) {
	if err := s.f(); err != nil {
		return benchResult{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < s.iters; i++ {
		if err := s.f(); err != nil {
			return benchResult{}, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchResult{
		Name:        s.name,
		Iterations:  s.iters,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(s.iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(s.iters),
		WallSeconds: wall.Seconds(),
	}, nil
}
