package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/mpx"
)

// bench7Result is one BENCH_7 measurement: MSBT broadcast goodput on
// one backend with model-driven packet sizing on or off. The autotuned
// rows additionally record what the tuner did — the last packet size
// the root chose (chosen_b; 0 means the profile never justified a
// split and the run stayed on the legacy one-chunk-per-tree framing)
// and the root's fitted link constants τ (per-frame start-up) and t_c
// (per-byte cost), the inputs to the paper's B_opt = sqrt(M·τ/(t_c·n)).
type bench7Result struct {
	Name          string `json:"name"`
	Transport     string `json:"transport"` // "inproc", "tcp" or "uds"
	Autotune      bool   `json:"autotune"`
	Dim           int    `json:"dim"`
	Rounds        int    `json:"rounds"`
	BytesPerRound int64  `json:"bytes_per_round"`

	SetupSeconds  float64 `json:"setup_s"`
	SteadySeconds float64 `json:"steady_s"`
	WallSeconds   float64 `json:"wall_s"`
	MBPerS        float64 `json:"mb_per_s"`
	CollectiveMBS float64 `json:"collective_mb_per_s"`

	ChosenB     int     `json:"chosen_b,omitempty"`
	Collectives int     `json:"autotuned_collectives,omitempty"`
	TauMicros   float64 `json:"tau_us,omitempty"`
	TcNsPerByte float64 `json:"tc_ns_per_byte,omitempty"`
}

type bench7File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench7Result `json:"benchmarks"`
}

// runBench7 measures the self-tuning data plane: a 1 MiB MSBT broadcast
// on the in-process, loopback-TCP and Unix-domain-socket backends, with
// online B_opt packet sizing off and on, for d = 4..maxD. Warm-up
// rounds before the timed window let the link estimator settle so the
// autotuned rows measure the tuner's steady state, not its cold start.
func runBench7(path string, maxD int) error {
	const (
		rounds = 8
		bcastM = 1 << 20
		warmup = 4
		reps   = 5 // best-of, against single-vCPU scheduler noise
	)
	out := bench7File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("self-tuning data plane: %d MiB MSBT broadcast, %d rounds per row after "+
			"%d untimed warm-up rounds (the estimator needs mpx.ProfileMinSamples timed flushes "+
			"before the tuner engages). autotune=false rows send one chunk per tree (legacy); "+
			"autotune=true rows split each tree's segment into packets of the clamped online "+
			"B_opt = sqrt(M*tau/(t_c*n)) at the transport's live (tau, t_c) fit — chosen_b/tau_us/"+
			"tc_ns_per_byte record the root's view. uds = same wire protocol over Unix-domain "+
			"sockets. mb_per_s as in BENCH_5: transport PayloadDelivered over the steady window "+
			"for socket rows, job arithmetic for inproc (where the estimator fits t_c ~ 0, B_opt "+
			"clamps to the legacy split, and on/off coincide by construction). Single-vCPU "+
			"container: the whole 2^d-endpoint mesh time-shares one core, run-to-run variance "+
			"is roughly +/-25 percent at d=8, so each row keeps the best of %d repetitions, "+
			"interleaved across the transport x autotune grid so rows compared against each "+
			"other sample the same host conditions.",
			bcastM>>20, rounds, warmup, reps),
	}
	// Repetitions are interleaved across the transport × autotune grid
	// (rep-major, not row-major): a single-vCPU container drifts on the
	// scale of minutes, so rows compared against each other must sample
	// the same host conditions, not conditions half a sweep apart.
	for d := 4; d <= maxD; d++ {
		best := map[string]*bench7Result{}
		for r := 0; r < reps; r++ {
			for _, tr := range []string{"inproc", "tcp", "uds"} {
				for _, auto := range []bool{false, true} {
					res, err := bench7Measure(tr, d, rounds, warmup, bcastM, auto)
					if err != nil {
						return err
					}
					key := fmt.Sprintf("%s/%v", tr, auto)
					if b, ok := best[key]; !ok || res.MBPerS > b.MBPerS {
						res := res
						best[key] = &res
					}
				}
			}
		}
		for _, tr := range []string{"inproc", "tcp", "uds"} {
			for _, auto := range []bool{false, true} {
				out.Benchmarks = append(out.Benchmarks, *best[fmt.Sprintf("%s/%v", tr, auto)])
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func bench7Measure(transport string, d, rounds, warmup, bcastM int, auto bool) (bench7Result, error) {
	N := 1 << uint(d)
	bytesPerRound := int64(bcastM) * int64(N-1)

	// Root-side observations, captured at the end of the steady window.
	// All ranks of the in-process harness share this process, so a
	// mutex-guarded capture works on every backend.
	var mu sync.Mutex
	var at comm.AutotuneStats
	var prof mpx.LinkProfile

	// The warm rounds also flip the tuner on per rank — SetAutotune must
	// be called from the rank's own goroutine, and doing it here keeps
	// the inproc backend (which never sees TCPRunOptions) on the same
	// path as the socket ones.
	warm := func(c *comm.Comm) error {
		c.SetAutotune(auto)
		return bcastJob(warmup, bcastM)(c)
	}
	steady := bcastJob(rounds, bcastM)
	job := func(c *comm.Comm) error {
		if err := steady(c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			at = c.AutotuneStats()
			if p, ok := c.Profile(); ok {
				prof = p
			}
			mu.Unlock()
		}
		return nil
	}

	spec := meshSpec{transport: transport, dim: d, opt: comm.TCPRunOptions{Autotune: auto}}
	m, err := measureMesh(spec, rounds, bytesPerRound, warm, job)
	if err != nil {
		return bench7Result{}, fmt.Errorf("bench7 %s auto=%v d=%d: %w", transport, auto, d, err)
	}
	res := bench7Result{
		Name: "BcastMSBT", Transport: transport, Autotune: auto, Dim: d, Rounds: rounds,
		BytesPerRound: bytesPerRound,
		SetupSeconds:  m.SetupSeconds, SteadySeconds: m.SteadySeconds, WallSeconds: m.WallSeconds,
		MBPerS: m.MBPerS, CollectiveMBS: m.CollectiveMBPerS,
	}
	if m.HaveStats && m.Stats.PayloadDelivered < bytesPerRound*int64(rounds) {
		return res, fmt.Errorf("bench7 %s auto=%v d=%d: transport observed %d delivered payload bytes, "+
			"claim needs at least %d", transport, auto, d, m.Stats.PayloadDelivered, bytesPerRound*int64(rounds))
	}
	if auto {
		res.ChosenB = at.LastB
		res.Collectives = at.Collectives
		res.TauMicros = prof.Tau * 1e6
		res.TcNsPerByte = prof.Tc * 1e9
	}
	fmt.Printf("Bench7BcastMSBT/%s/auto=%v/d=%d setup %7.3fs steady %7.3fs %10.1f MB/s  B=%d tau=%.0fus tc=%.2fns/B\n",
		transport, auto, d, res.SetupSeconds, res.SteadySeconds, res.MBPerS, res.ChosenB, res.TauMicros, res.TcNsPerByte)
	return res, nil
}
