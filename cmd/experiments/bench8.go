package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/cube"
	"repro/internal/member"
	"repro/internal/transport"
)

// bench8Result is one BENCH_8 measurement: goodput of root-signed
// broadcast rounds over an elastic mesh, on a stable view (clean) or
// through a seeded storm (churn: one rank crashes mid-run and a fresh
// incarnation joins back through the hole). The churn rows additionally
// record the elasticity latencies: detect_ms (crash to the root
// observing the new epoch), repair_ms (crash to the FIRST round
// completed on a post-crash epoch — detection plus tree regraft plus
// the retried collective), and join_admit_ms (the joiner's Join call,
// dial to admission).
type bench8Result struct {
	Name         string `json:"name"`
	Mode         string `json:"mode"` // "clean" or "churn"
	Dim          int    `json:"dim"`
	PayloadBytes int    `json:"payload_bytes"`

	WallSeconds     float64 `json:"wall_s"`
	RoundsCompleted int64   `json:"rounds_completed"`
	ViewRetries     int64   `json:"view_retries"`
	MBPerS          float64 `json:"mb_per_s"`

	DetectMillis float64 `json:"detect_ms,omitempty"`
	RepairMillis float64 `json:"repair_ms,omitempty"`
	JoinMillis   float64 `json:"join_admit_ms,omitempty"`
}

type bench8File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench8Result `json:"benchmarks"`
}

// runBench8 measures the elastic-membership subsystem for d = 2..maxD:
// collective goodput with the membership machinery engaged but idle
// (clean), then the same workload through a crash + hole-join storm
// (churn), reporting how much goodput the storm costs and how fast the
// mesh repairs.
func runBench8(path string, maxD int) error {
	const reps = 3
	out := bench8File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("elastic membership under churn: every rank an Elastic endpoint (member-mode "+
			"sockets, membership manager, reactive tree repair), root driving 256 KiB epoch-pinned "+
			"broadcast rounds with a gather ack. clean = stable full view for the whole window. "+
			"churn = same workload; 40%% in, the highest rank's transport is aborted (a process "+
			"crash: survivors' reconnect supervisors burn a 300ms budget, declare it dead, flood "+
			"the new view, regraft the tree); 70%% in, a fresh incarnation joins back through the "+
			"hole. goodput counts payload*(live-1) per completed round over the whole window — "+
			"rounds interrupted by a view change are retried on the repaired view and count once. "+
			"repair_ms = crash to the first round completed on a post-crash epoch. The in-process "+
			"crash closes the victim's listener, so redials fail fast (connection refused) and "+
			"detection runs well under the full budget; a silent network partition would pay the "+
			"whole budget instead. Single-vCPU container, best of %d repetitions per row, "+
			"interleaved across modes so compared rows sample the same host conditions.", reps),
	}
	for d := 2; d <= maxD; d++ {
		best := map[string]*bench8Result{}
		for r := 0; r < reps; r++ {
			for _, mode := range []string{"clean", "churn"} {
				res, err := bench8Measure(d, mode == "churn")
				if err != nil {
					return fmt.Errorf("bench8 %s d=%d: %w", mode, d, err)
				}
				if b, ok := best[mode]; !ok || res.MBPerS > b.MBPerS {
					res := res
					best[mode] = &res
				}
			}
		}
		for _, mode := range []string{"clean", "churn"} {
			out.Benchmarks = append(out.Benchmarks, *best[mode])
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// bench8ExpectedExit reports whether a program error is the legitimate
// end of a crashed rank's run (its transport torn down underneath it).
func bench8ExpectedExit(err error) bool {
	s := err.Error()
	for _, needle := range []string{"machine stopped", "connection lost", "is not alive in view", "closed"} {
		if strings.Contains(s, needle) {
			return true
		}
	}
	return false
}

func bench8Measure(d int, churn bool) (bench8Result, error) {
	const (
		payloadM = 256 << 10
		window   = 1500 * time.Millisecond
	)
	N := 1 << uint(d)
	res := bench8Result{Name: "ElasticRounds", Mode: "clean", Dim: d, PayloadBytes: payloadM}
	if churn {
		res.Mode = "churn"
	}

	mk := func(id cube.NodeID, join bool) (*comm.Elastic, error) {
		return comm.NewElastic(comm.ElasticOptions{
			Dim: d, Self: id, Join: join,
			Resilience: transport.ResilienceOptions{
				Enabled:     true,
				MaxAttempts: 4,
				Budget:      300 * time.Millisecond,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  30 * time.Millisecond,
			},
			HandshakeTimeout: 10 * time.Second,
		})
	}
	eps := make([]*comm.Elastic, N)
	addrs := make([]string, N)
	for i := range eps {
		e, err := mk(cube.NodeID(i), false)
		if err != nil {
			return res, err
		}
		defer e.Close()
		eps[i] = e
		addrs[i] = e.Addr()
	}
	cerrs := make(chan error, N)
	for _, e := range eps {
		go func(e *comm.Elastic) { cerrs <- e.Connect(addrs) }(e)
	}
	for range eps {
		if err := <-cerrs; err != nil {
			return res, err
		}
	}

	var (
		stop      atomic.Bool
		delivered atomic.Int64
		rounds    atomic.Int64
		retries   atomic.Int64

		mu        sync.Mutex
		tKill     time.Time
		killEpoch uint64
		repairAt  time.Time
	)
	// Every root-side completion lands here with its pinned epoch; the
	// first one on a post-crash epoch timestamps the repair.
	complete := func(epoch uint64, liveBytes int64) {
		delivered.Add(liveBytes)
		rounds.Add(1)
		mu.Lock()
		if !tKill.IsZero() && epoch > killEpoch && repairAt.IsZero() {
			repairAt = time.Now()
		}
		mu.Unlock()
	}

	template := make([]byte, payloadM)
	rootProg := func(s *comm.Session) error {
		payload := append([]byte(nil), template...)
		for round := uint32(0); ; round++ {
			vc, err := s.Pin()
			if err != nil {
				return err
			}
			stopping := stop.Load()
			if stopping {
				payload[0] = 1
			}
			binary.BigEndian.PutUint32(payload[1:5], round)
			if _, err := vc.Bcast(payload); err != nil {
				if isVCE(err) {
					retries.Add(1)
					round--
					continue
				}
				return err
			}
			if _, err := vc.Gather(nil); err != nil {
				if isVCE(err) {
					retries.Add(1)
					round--
					continue
				}
				return err
			}
			complete(vc.Epoch(), int64(payloadM)*int64(vc.View().LiveCount()-1))
			if stopping {
				return nil
			}
		}
	}
	followerProg := func(s *comm.Session) error {
		for {
			vc, err := s.Pin()
			if err != nil {
				return err
			}
			data, err := vc.Bcast(nil)
			if err != nil {
				if isVCE(err) {
					continue
				}
				return err
			}
			if len(data) != payloadM {
				return fmt.Errorf("rank %d: round payload %d bytes, want %d", vc.Rank(), len(data), payloadM)
			}
			stopping := data[0] == 1
			if _, err := vc.Gather(nil); err != nil {
				if isVCE(err) {
					continue
				}
				return err
			}
			if stopping {
				return nil
			}
		}
	}

	start := time.Now()
	perrs := make(chan error, N+1)
	running := 0
	launch := func(e *comm.Elastic, prog func(*comm.Session) error) {
		running++
		go func() { perrs <- e.Run(prog) }()
	}
	launch(eps[0], rootProg)
	for _, e := range eps[1:] {
		launch(e, followerProg)
	}

	victim := N - 1
	if churn {
		time.Sleep(window * 4 / 10)
		mu.Lock()
		killEpoch = eps[0].Manager().Epoch()
		tKill = time.Now()
		mu.Unlock()
		eps[victim].Crash()
		if !eps[0].Manager().WaitEpochAbove(killEpoch, 10*time.Second) {
			return res, errors.New("crash never detected")
		}
		res.DetectMillis = float64(time.Since(tKill).Microseconds()) / 1e3

		time.Sleep(window * 3 / 10)
		reborn, err := mk(cube.NodeID(victim), true)
		if err != nil {
			return res, err
		}
		defer reborn.Close()
		joinAddrs := append([]string(nil), addrs...)
		joinAddrs[victim] = ""
		tJoin := time.Now()
		if err := reborn.Join(joinAddrs, 10*time.Second); err != nil {
			return res, fmt.Errorf("rejoin: %w", err)
		}
		res.JoinMillis = float64(time.Since(tJoin).Microseconds()) / 1e3
		launch(reborn, followerProg)
		time.Sleep(window * 3 / 10)
	} else {
		time.Sleep(window)
	}
	stop.Store(true)
	wall := time.Since(start)
	for i := 0; i < running; i++ {
		select {
		case err := <-perrs:
			if err != nil && !(churn && bench8ExpectedExit(err)) {
				return res, err
			}
		case <-time.After(30 * time.Second):
			return res, errors.New("programs still running 30s after the stop round")
		}
	}

	res.WallSeconds = wall.Seconds()
	res.RoundsCompleted = rounds.Load()
	res.ViewRetries = retries.Load()
	res.MBPerS = float64(delivered.Load()) / 1e6 / wall.Seconds()
	mu.Lock()
	if churn && !repairAt.IsZero() {
		res.RepairMillis = float64(repairAt.Sub(tKill).Microseconds()) / 1e3
	}
	mu.Unlock()
	if churn && res.RepairMillis == 0 {
		return res, errors.New("no round ever completed on a post-crash epoch")
	}
	fmt.Printf("Bench8ElasticRounds/%s/d=%d %6.2fs %8.1f MB/s  rounds=%d retries=%d detect=%.1fms repair=%.1fms join=%.1fms\n",
		res.Mode, d, res.WallSeconds, res.MBPerS, res.RoundsCompleted, res.ViewRetries,
		res.DetectMillis, res.RepairMillis, res.JoinMillis)
	return res, nil
}

func isVCE(err error) bool {
	var vce *member.ViewChangedError
	return errors.As(err, &vce)
}
