// Command experiments regenerates EXPERIMENTS.md: the complete
// paper-vs-measured record for every table and figure of Ho & Johnsson
// (ICPP 1986), produced by running the full experiment suite on the
// simulator and the analytic model.
//
// Usage:
//
//	go run ./cmd/experiments            # write EXPERIMENTS.md in the cwd
//	go run ./cmd/experiments -o out.md  # write elsewhere
//	go run ./cmd/experiments -stdout    # print instead of writing
//
// The fault-degradation sweep is configurable:
//
//	go run ./cmd/experiments -faults 8 -fault-seed 3 -fault-kind nodes
//
// The performance harness (see README "Performance") runs the named
// hot-path workloads instead of regenerating the document and records
// the trajectory:
//
//	go run ./cmd/experiments -bench BENCH_2.json
//	go run ./cmd/experiments -bench BENCH_2.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The transport throughput suite compares collective goodput over the
// in-process channel transport against loopback TCP sockets (d=4..8):
//
//	go run ./cmd/experiments -bench3 BENCH_3.json
//
// The wire fast-path suite reruns the same jobs on the v2 data plane
// (vectored writes, hardware CRC, batched frames and ACKs), reporting
// mesh setup separately from the steady-state collective window:
//
//	go run ./cmd/experiments -bench5 BENCH_5.json
//	go run ./cmd/experiments -bench5 BENCH_5.json -bench5-max 4   # CI smoke
//
// The collective-service load suite drives the multi-tenant job runtime
// (internal/svc) with an open-loop Poisson stream of mixed collective
// jobs and records throughput, completion-latency percentiles and
// per-tenant fairness on both backends:
//
//	go run ./cmd/experiments -bench6 BENCH_6.json
//
// The self-tuning data-plane suite compares MSBT broadcast goodput with
// online B_opt packet sizing off and on, across the in-process,
// loopback-TCP and Unix-domain-socket backends:
//
//	go run ./cmd/experiments -bench7 BENCH_7.json
//	go run ./cmd/experiments -bench7 BENCH_7.json -bench7-max 4   # CI smoke
//
// The elastic-membership suite measures collective goodput over a mesh
// whose population changes at runtime — a stable view versus a seeded
// crash + hole-join storm — plus the repair latencies (crash detection,
// first post-repair completion, join admission):
//
//	go run ./cmd/experiments -bench8 BENCH_8.json
//	go run ./cmd/experiments -bench8 BENCH_8.json -bench8-max 3   # CI smoke
//
// The online-growth suite measures mesh re-dimensioning under load: a
// rank beyond the founding 2^d joins mid-traffic, every survivor widens
// its link set online, and the suite records the growth latency (join
// request to the first collective completed on the (d+1)-cube) plus the
// goodput dip while the mesh re-dimensions:
//
//	go run ./cmd/experiments -bench9 BENCH_9.json
//	go run ./cmd/experiments -bench9 BENCH_9.json -bench9-max 3   # CI smoke
//
// The multi-source scheduling suite measures aggregate all-to-all
// goodput — all 2^d ranks sourcing personalized exchanges at once —
// with the per-step link-conflict-free schedule on versus the naive
// forward-on-arrival launch, across the in-process, loopback-TCP and
// Unix-domain-socket backends:
//
//	go run ./cmd/experiments -bench10 BENCH_10.json
//	go run ./cmd/experiments -bench10 BENCH_10.json -bench10-max 4   # CI smoke
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/exp"
	"repro/internal/gossip"
	"repro/internal/model"
	"repro/internal/route"
	"repro/internal/routetab"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output path")
	stdout := flag.Bool("stdout", false, "print to stdout instead of writing")
	faults := flag.Int("faults", 8, "largest fault count in the degradation sweep")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the degradation sweep's random fault draws")
	faultKind := flag.String("fault-kind", "links", "structural fault kind for the degradation sweep: links or nodes")
	bench := flag.String("bench", "", "run the perf suite and write its JSON record here instead of generating the document")
	bench3 := flag.String("bench3", "", "run the transport throughput suite (in-process vs TCP loopback) and write its JSON record here")
	bench5 := flag.String("bench5", "", "run the wire fast-path throughput suite (BENCH_3 jobs on the v2 data plane) and write its JSON record here")
	bench5Max := flag.Int("bench5-max", 8, "largest cube dimension the -bench5 sweep runs (CI smoke uses 4)")
	bench6 := flag.String("bench6", "", "run the collective-service Poisson load suite (multi-tenant job mix, throughput + completion-latency percentiles + fairness) and write its JSON record here")
	bench6Max := flag.Int("bench6-max", 4, "largest cube dimension the -bench6 sweep runs")
	bench7 := flag.String("bench7", "", "run the self-tuning data-plane suite (MSBT broadcast with online B_opt sizing off/on, inproc vs TCP vs UDS) and write its JSON record here")
	bench7Max := flag.Int("bench7-max", 8, "largest cube dimension the -bench7 sweep runs (CI smoke uses 4)")
	bench8 := flag.String("bench8", "", "run the elastic-membership suite (collective goodput on a stable view vs through a crash + hole-join storm, with detection/repair/join latencies) and write its JSON record here")
	bench8Max := flag.Int("bench8-max", 4, "largest cube dimension the -bench8 sweep runs (CI smoke uses 3)")
	bench9 := flag.String("bench9", "", "run the online-growth suite (a rank beyond the founding cube joins mid-traffic: growth latency and the goodput dip while the mesh re-dimensions) and write its JSON record here")
	bench9Max := flag.Int("bench9-max", 4, "largest founding cube dimension the -bench9 sweep runs (CI smoke uses 3)")
	bench10 := flag.String("bench10", "", "run the multi-source scheduling suite (aggregate all-to-all goodput, conflict-free schedule vs naive launch, inproc vs TCP vs UDS) and write its JSON record here")
	bench10Max := flag.Int("bench10-max", 8, "largest cube dimension the -bench10 sweep runs (CI smoke uses 4)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *bench != "" {
		if err := runBench(*bench); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench3 != "" {
		if err := runBench3(*bench3); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench5 != "" {
		if err := runBench5(*bench5, *bench5Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench6 != "" {
		if err := runBench6(*bench6, *bench6Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench10 != "" {
		if err := runBench10(*bench10, *bench10Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench7 != "" {
		if err := runBench7(*bench7, *bench7Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench8 != "" {
		if err := runBench8(*bench8, *bench8Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *bench9 != "" {
		if err := runBench9(*bench9, *bench9Max); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	var buf bytes.Buffer
	if err := generate(&buf, degradationConfig{max: *faults, seed: *faultSeed, kind: *faultKind}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *stdout {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, buf.Len())
}

func generate(w *bytes.Buffer, deg degradationConfig) error {
	fmt.Fprint(w, `# EXPERIMENTS — paper vs. measured

Regenerated by `+"`go run ./cmd/experiments`"+`. Every table and figure of
Ho & Johnsson (ICPP 1986) is reproduced on the discrete-event simulator
(`+"`internal/sim`"+`) with the schedules of `+"`internal/sched`"+` and checked
against the closed forms of `+"`internal/model`"+`. The machine is simulated —
absolute times are arbitrary units — so the reproduction targets are step
counts, shapes, crossovers and speedups, not wall-clock values. The same
data is asserted programmatically in the test suite (internal/exp).

`)
	// Each section renders into its own buffer on the exp worker pool
	// (sections are independent; simulation dominates the cost), then the
	// buffers are concatenated in document order.
	sections := []func(*bytes.Buffer) error{
		table1,
		table2,
		table3,
		table4,
		func(b *bytes.Buffer) error { table5(b); return nil },
		table6,
		figures,
		ablations,
		extensions,
		func(b *bytes.Buffer) error { return degradation(b, deg) },
	}
	bufs, err := exp.Parallel(sections, 0, func(f func(*bytes.Buffer) error) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := f(&b); err != nil {
			return nil, err
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		w.Write(b.Bytes())
	}
	return nil
}

// degradationConfig carries the -faults / -fault-seed / -fault-kind
// flags into the fault-degradation section.
type degradationConfig struct {
	max  int
	seed int64
	kind string
}

func degradation(w *bytes.Buffer, deg degradationConfig) error {
	const n = 5
	fmt.Fprintf(w, "\n## Fault degradation — broadcast under dead %s\n\n", deg.kind)
	fmt.Fprintf(w, "Beyond the paper: the fault subsystem (internal/fault) kills random\n%s (seed %d) and the simulator reruns each broadcast schedule on the\ndegraded %d-cube. \"del\" is the fraction of nodes that still receive the\ncomplete payload; makespan counts surviving transmissions only. The\nredundant MSBT sends the full message down every one of the n\nedge-disjoint ERSBTs, so it tolerates any n-1 = %d dead links at an\nn-fold bandwidth cost, while the chunked MSBT needs all n trees and the\nsingle-tree broadcasts need their one root path. Regenerate with\n`-faults`, `-fault-seed` and `-fault-kind` (links or nodes).\n\n",
		deg.kind, deg.seed, n, n-1)

	counts := []int{0}
	for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		if k <= deg.max {
			counts = append(counts, k)
		}
	}
	rows, err := exp.Degradation(n, counts, deg.seed, 4096, 1024, deg.kind)
	if err != nil {
		return err
	}
	algs := []string{"sbt", "bst", "msbt", "msbt-redundant"}
	byKey := map[string]exp.DegradationRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%d/%s", r.Faults, r.Alg)] = r
	}
	fmt.Fprintf(w, "| faults |")
	for _, a := range algs {
		fmt.Fprintf(w, " %s T | del |", a)
	}
	fmt.Fprintf(w, "\n|")
	for i := 0; i < 2*len(algs)+1; i++ {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for _, k := range counts {
		fmt.Fprintf(w, "| %d |", k)
		for _, a := range algs {
			r := byKey[fmt.Sprintf("%d/%s", k, a)]
			fmt.Fprintf(w, " %.1f | %.0f%% |", r.Makespan, 100*r.Delivered)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

func extensions(w *bytes.Buffer) error {
	fmt.Fprintf(w, "\n## Extensions beyond the paper's evaluation\n\n")

	// All-node collectives over N concurrent trees (§1's pointer to [8]).
	fmt.Fprintf(w, "**All-node collectives (N concurrent trees, §1 / [8]).** All-to-all\npersonalized communication simulated over N concurrent SBTs vs N\nconcurrent BSTs (all ports, m = 1):\n\n")
	fmt.Fprintf(w, "| n | SBT makespan | BST makespan | gain |\n|---|---|---|---|\n")
	for _, n := range []int{5, 6, 7} {
		sbtT, bstT, err := gossip.CompareFamilies(n, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %.1f | %.1f | %.2fx |\n", n, sbtT, bstT, sbtT/bstT)
	}
	fmt.Fprintf(w, "\nAggregate per-link volume is family-independent by symmetry; the gain is\ntemporal (each SBT serializes N/2 of its root's data through one link).\n\n")

	// Permutation routing (related work [20]).
	fmt.Fprintf(w, "**Permutation routing (related work [20], Valiant & Brebner).** Bit-reversal\nadversary vs Valiant's randomized two-phase routing, all-port model:\n\n")
	fmt.Fprintf(w, "| n | e-cube congestion | Valiant congestion (mean of 5) |\n|---|---|---|\n")
	for _, n := range []int{8, 10, 12} {
		ce, err := route.WorstCaseCongestionECube(n)
		if err != nil {
			return err
		}
		cfg := sim.Config{Dim: n, Model: model.AllPorts, Tau: 0.01, Tc: 1}
		st, err := route.MeasureValiantMany(cfg, n, route.BitReversal(n), 1, 5, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d | %.1f |\n", n, ce, st.MeanCongestion)
	}
	fmt.Fprintf(w, "\nE-cube congestion doubles every two dimensions (2^(n/2-1)); Valiant's\nstays near log N.\n\n")

	// Routing tables (§5.2).
	fmt.Fprintf(w, "**Routing-table sizes (§5.2).** Per-internal-node BST scatter tables:\n\n")
	fmt.Fprintf(w, "| n | depth-first max bits | reversed-BFS max bits |\n|---|---|---|\n")
	for _, n := range []int{6, 8, 10} {
		df, err := routetab.TableSizeBits(n, routetab.DepthFirst)
		if err != nil {
			return err
		}
		rbf, err := routetab.TableSizeBits(n, routetab.ReversedBreadthFirst)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d | %d |\n", n, df.MaxBits, rbf.MaxBits)
	}
	fmt.Fprintf(w, "\nDepth-first stays within (log N/2 + 1)·log N bits, as §5.2 argues.\n")
	return nil
}

func table1(w *bytes.Buffer) error {
	fmt.Fprintf(w, "## Table 1 — propagation delays\n\n")
	fmt.Fprintf(w, "Routing steps until every node holds the first packet (n = 5 shown; the\n")
	fmt.Fprintf(w, "test suite asserts n = 3, 5, 6). **Simulator matches the paper exactly on\nall 12 rows.**\n\n")
	rows, err := exp.Table1(5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| algorithm | port model | paper | simulated |\n|---|---|---|---|\n")
	for _, r := range rows {
		mark := ""
		if r.Simulated != r.Predicted {
			mark = " ⚠"
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d%s |\n", r.Alg, r.Port, r.Predicted, r.Simulated, mark)
	}
	fmt.Fprintln(w)
	return nil
}

func table2(w *bytes.Buffer) error {
	fmt.Fprintf(w, "## Table 2 — cycles per distinct packet\n\n")
	fmt.Fprintf(w, "Steady-state marginal cost per packet, measured between 4- and 12-packet\nstreams (n = 5).\n\n")
	rows, err := exp.Table2(5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| algorithm | port model | paper | simulated |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %s | %.3f | %.3f |\n", r.Alg, r.Port, r.Predicted, r.Simulated)
	}
	fmt.Fprintln(w)
	return nil
}

func table3(w *bytes.Buffer) error {
	p := model.Params{N: 6, M: 4096, B: 256, Tau: 100, Tc: 1}
	fmt.Fprintf(w, "## Table 3 — broadcast complexity\n\n")
	fmt.Fprintf(w, "Closed forms evaluated at n = %d, M = %.0f, B = %.0f, tau = %.0f, t_c = %.0f,\n",
		p.N, p.M, p.B, p.Tau, p.Tc)
	fmt.Fprintf(w, "with a simulated check for every row whose schedule is implemented\n(simulated within rounding of T everywhere).\n\n")
	rows, err := exp.Table3(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| algorithm | port model | T(B) | B_opt | T_min | simulated | sim/T |\n|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		sim, ratio := "—", "—"
		if !math.IsNaN(r.Simulated) {
			sim = fmt.Sprintf("%.0f", r.Simulated)
			ratio = fmt.Sprintf("%.3f", r.Simulated/r.T)
		}
		fmt.Fprintf(w, "| %s | %s | %.0f | %.1f | %.0f | %s | %s |\n",
			r.Alg, r.Port, r.T, r.Bopt, r.Tmin, sim, ratio)
	}
	fmt.Fprintln(w)
	return nil
}

func table4(w *bytes.Buffer) error {
	fmt.Fprintf(w, "## Table 4 — complexity relative to MSBT routing\n\n")
	fmt.Fprintf(w, "Paper entries are asymptotic; the simulated column measures the streaming\nregime at 16n packets (n = 5), which approaches the asymptote from below.\n\n")
	rows, err := exp.Table4(5)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| algorithm | port model | regime | paper | simulated |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		sim := "—"
		if !math.IsNaN(r.Simulated) {
			sim = fmt.Sprintf("%.2f", r.Simulated)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %.2f | %s |\n", r.Alg, r.Port, r.Regime, r.Predicted, sim)
	}
	fmt.Fprintln(w)
	return nil
}

func table5(w *bytes.Buffer) {
	fmt.Fprintf(w, "## Table 5 — BST maximum subtree sizes\n\n")
	fmt.Fprintf(w, "**Matches the paper digit for digit for every n = 2..20** (golden-tested in\ninternal/bst). BST(min) and the cyclic-node count are extensions.\n\n")
	fmt.Fprintf(w, "| n | BST(max) | (N-1)/log N | ratio | BST(min) | cyclic nodes |\n|---|---|---|---|---|---|\n")
	for _, r := range exp.Table5(2, 20) {
		fmt.Fprintf(w, "| %d | %d | %.2f | %.2f | %d | %d |\n",
			r.N, r.BSTMax, r.Ideal, r.Ratio, r.BSTMin, r.Cyclics)
	}
	fmt.Fprintln(w)
}

func table6(w *bytes.Buffer) error {
	p := model.Params{N: 6, M: 16, Tau: 10, Tc: 1}
	fmt.Fprintf(w, "## Table 6 — personalized communication complexity\n\n")
	fmt.Fprintf(w, "Evaluated at n = %d, M = %.0f, tau = %.0f, t_c = %.0f, with simulated SBT and\nBST scatters at ample packet size. The all-port BST beats the all-port SBT\nby ~ log N / 2, the paper's headline.\n\n", p.N, p.M, p.Tau, p.Tc)
	rows, err := exp.Table6(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| algorithm | port model | T_min (paper) | simulated |\n|---|---|---|---|\n")
	for _, r := range rows {
		sim := "—"
		if !math.IsNaN(r.Simulated) {
			sim = fmt.Sprintf("%.0f", r.Simulated)
		}
		fmt.Fprintf(w, "| %s | %s | %.0f | %s |\n", r.Alg, r.Port, r.Tmin, sim)
	}
	fmt.Fprintln(w)
	return nil
}

func seriesTable(w *bytes.Buffer, xLabel string, series ...trace.Series) {
	fmt.Fprintf(w, "| %s |", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, " %s |", s.Label)
	}
	fmt.Fprintf(w, "\n|")
	for i := 0; i <= len(series); i++ {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "| %.0f |", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(w, " %.2f |", s.Y[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func figures(w *bytes.Buffer) error {
	dims := []int{2, 3, 4, 5, 6, 7}

	fmt.Fprintf(w, "## Figure 5 — SBT broadcast vs external packet size\n\n")
	fmt.Fprintf(w, "60 KB message, iPSC-like constants (tau = 1 ms per internal 1 KB packet,\nt_c = 1 us/byte), full-duplex one port. As in the paper: time grows\n(~linearly in the start-up count) as the external packet shrinks below the\n1 KB internal packet, and flattens above it.\n\n")
	sizes := []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	f5, err := exp.Figure5(dims, 60*1024, sizes)
	if err != nil {
		return err
	}
	seriesTable(w, "B (bytes)", f5...)

	fmt.Fprintf(w, "## Figure 6 — SBT vs MSBT broadcast times\n\n")
	fmt.Fprintf(w, "60 KB in 1 KB packets, times in ms-equivalents.\n\n")
	s6a, s6b, err := exp.Figure6(dims)
	if err != nil {
		return err
	}
	seriesTable(w, "d", s6a, s6b)

	fmt.Fprintf(w, "## Figure 7 — MSBT/SBT broadcast speedup\n\n")
	fmt.Fprintf(w, "The paper measured ≈ log N on the iPSC/d7; the simulator reproduces it.\n\n")
	f7, err := exp.Figure7(dims)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| d | speedup | log N |\n|---|---|---|\n")
	for i := range f7.X {
		fmt.Fprintf(w, "| %.0f | %.2f | %.0f |\n", f7.X[i], f7.Y[i], f7.X[i])
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Figure 8 — personalized communication, SBT vs BST\n\n")
	fmt.Fprintf(w, "1 KB per node, one-port hardware with the paper's observed 20%% send/\nreceive overlap. As measured on the iPSC: the BST pulls ahead with\ngrowing dimension (it takes \"full advantage of the overlap\"), while at\nsmall dimensions the curves nearly coincide.\n\n")
	s8a, s8b, err := exp.Figure8(dims, 1024)
	if err != nil {
		return err
	}
	seriesTable(w, "d", s8a, s8b)
	return nil
}

func ablations(w *bytes.Buffer) error {
	fmt.Fprintf(w, "## Ablations — what the paper's design choices buy\n\n")
	fmt.Fprintf(w, "| ablation | paper's choice | alternative | alternative/paper |\n|---|---|---|---|\n")

	a, err := exp.AblateMSBTLabels(6, 6)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s (%s) | %.0f | %.0f | %.2fx |\n", a.Name, a.Unit, a.Paper, a.Alternative, a.Gain())

	b, err := exp.AblateScatterOrder(6, 4, 16)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s (%s) | %.0f | %.0f | %.2fx |\n", b.Name, b.Unit, b.Paper, b.Alternative, b.Gain())

	c, err := exp.AblateSBTScatterInterleave(6, 32, 0.2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s (%s) | %.1f | %.1f | %.2fx |\n", c.Name, c.Unit, c.Paper, c.Alternative, c.Gain())

	d := exp.AblateBalance(10)
	fmt.Fprintf(w, "| %s, n=10 (%s) | %.0f | %.0f | %.2fx |\n", d.Name, d.Unit, d.Paper, d.Alternative, d.Gain())

	measured, formula, err := exp.AblatePacketSize(5, 4096, 100, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPacket-size sweep (MSBT, n = 5, M = 4096, tau = 100, t_c = 1): measured\noptimum B = %.0f vs closed-form B_opt = %.1f — the Table 3 optimum is\nconfirmed within the power-of-two sweep resolution.\n\n", measured, formula)

	fmt.Fprintf(w, "The HP-crossover remark of §3.4 (\"broadcasting through a Hamiltonian path\nmay be faster than the SBT\") is quantified in internal/model: with\ntau = 100, t_c = 1 the crossover message sizes are M* = ")
	for i, n := range []int{3, 4, 5, 6} {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%.0f (n=%d)", model.HPSBTCrossoverM(n, 100, 1), n)
	}
	fmt.Fprintf(w, " elements.\n")
	return nil
}
