package main

// Shared measurement harness for the goodput benches (bench3, bench5,
// bench7) and the cluster bench (bench6): backend dispatch by name,
// barrier-bracketed steady-state timing, and the setup/steady/goodput
// arithmetic every suite used to duplicate.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/mpx"
	"repro/internal/svc"
)

// steadyTimer separates mesh setup from the measured collective rounds:
// wrap brackets a job with barriers and rank 0 times only the window
// between them, so dialing 2^d loopback sockets does not pollute the
// goodput number (that cost is reported separately as setup_s).
type steadyTimer struct {
	mu     sync.Mutex
	steady time.Duration
}

func (st *steadyTimer) wrap(job func(c *comm.Comm) error) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		if err := job(c); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			st.mu.Lock()
			st.steady = time.Since(start)
			st.mu.Unlock()
		}
		return nil
	}
}

func (st *steadyTimer) seconds(wall time.Duration) (setup, steady float64) {
	st.mu.Lock()
	d := st.steady
	st.mu.Unlock()
	if d <= 0 || d > wall {
		d = wall
	}
	return (wall - d).Seconds(), d.Seconds()
}

// meshSpec names one measured mesh configuration: a backend plus the
// socket options (ignored for inproc).
type meshSpec struct {
	transport string // "inproc", "tcp" or "uds"
	dim       int
	opt       comm.TCPRunOptions
}

// runMesh dispatches program to the comm runner for spec's backend.
func runMesh(spec meshSpec, program func(c *comm.Comm) error) error {
	switch spec.transport {
	case "inproc":
		return comm.Run(spec.dim, program)
	case "tcp":
		return comm.RunTCPWith(spec.dim, spec.opt, program)
	case "uds":
		return comm.RunUDSWith(spec.dim, spec.opt, program)
	}
	return fmt.Errorf("unknown transport %q", spec.transport)
}

// meshMeasurement is the timing/goodput record every mesh bench shares.
type meshMeasurement struct {
	SetupSeconds  float64
	SteadySeconds float64
	WallSeconds   float64
	// CollectiveMBPerS is job arithmetic: bytesPerRound × rounds over the
	// steady window — payload at final destinations only, comparable
	// across backends.
	CollectiveMBPerS float64
	// MBPerS is the delivered-payload view: on socket backends from the
	// transport's own PayloadDelivered counter (relay hops included), on
	// inproc identical to CollectiveMBPerS (no transport counters there).
	MBPerS float64
	// Stats carries the summed transport counters; HaveStats says whether
	// the backend produced any.
	Stats     mpx.TransportStats
	HaveStats bool
}

// measureMesh runs rounds of job inside ONE mesh on spec's backend with
// the steady window barrier-bracketed by steadyTimer. warm, when
// non-nil, runs inside the mesh before the timed window — per-rank
// setup (enabling autotuning, settling the link estimator) that must
// not pollute the goodput number.
func measureMesh(spec meshSpec, rounds int, bytesPerRound int64,
	warm, job func(c *comm.Comm) error) (meshMeasurement, error) {
	var st steadyTimer
	var m meshMeasurement
	program := st.wrap(job)
	if warm != nil {
		timed := program
		program = func(c *comm.Comm) error {
			if err := warm(c); err != nil {
				return err
			}
			return timed(c)
		}
	}
	if spec.transport != "inproc" {
		m.HaveStats = true
		prev := spec.opt.StatsSink
		spec.opt.StatsSink = func(s mpx.TransportStats) {
			m.Stats = s
			if prev != nil {
				prev(s)
			}
		}
	}
	start := time.Now()
	err := runMesh(spec, program)
	wall := time.Since(start)
	if err != nil {
		return m, err
	}
	m.WallSeconds = wall.Seconds()
	m.SetupSeconds, m.SteadySeconds = st.seconds(wall)
	m.CollectiveMBPerS = float64(bytesPerRound) * float64(rounds) / m.SteadySeconds / (1 << 20)
	m.MBPerS = m.CollectiveMBPerS
	if m.HaveStats {
		m.MBPerS = float64(m.Stats.PayloadDelivered) / m.SteadySeconds / (1 << 20)
	}
	return m, nil
}

// startBenchCluster is runMesh's twin for the collective service: start
// the multi-tenant runtime mesh on the named backend.
func startBenchCluster(transport string, d int, opt svc.Options, topt comm.TCPRunOptions) (*comm.Cluster, error) {
	switch transport {
	case "inproc":
		return comm.StartLocalCluster(d, opt), nil
	case "tcp":
		return comm.StartCluster(d, opt, topt)
	case "uds":
		topt.Network = "unix"
		return comm.StartCluster(d, opt, topt)
	}
	return nil, fmt.Errorf("unknown transport %q", transport)
}
