package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/cube"
	"repro/internal/transport"
)

// bench9Result is one BENCH_9 measurement: the cost of growing a live
// mesh by a dimension. A d-cube of elastic endpoints runs root-signed
// broadcast rounds; mid-window a rank beyond the founding 2^d joins,
// every survivor widens its link set online, and the view cuts over to
// the (d+1)-cube. growth_ms is the elasticity headline — join request
// to the FIRST collective completed on the grown cube — and the three
// goodput rates bracket the re-dimensioning: before the join, during
// the fixed 250ms bracket that follows it (the dip window), and after.
type bench9Result struct {
	Name         string `json:"name"`
	Dim          int    `json:"dim"` // founding dimension; the mesh grows to dim+1
	PayloadBytes int    `json:"payload_bytes"`

	WallSeconds     float64 `json:"wall_s"`
	RoundsCompleted int64   `json:"rounds_completed"`
	ViewRetries     int64   `json:"view_retries"`

	GrowthMillis  float64 `json:"growth_ms"` // join request -> first collective at d+1
	PreMBPerS     float64 `json:"pre_mb_per_s"`
	DuringMBPerS  float64 `json:"during_mb_per_s"`
	PostMBPerS    float64 `json:"post_mb_per_s"`
	GoodputDipPct float64 `json:"goodput_dip_pct"` // 1 - during/pre, in percent
}

type bench9File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	Note       string         `json:"note"`
	Benchmarks []bench9Result `json:"benchmarks"`
}

// runBench9 measures online mesh growth for founding d = 2..maxD.
func runBench9(path string, maxD int) error {
	const reps = 3
	out := bench9File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note: fmt.Sprintf("online mesh re-dimensioning: a founding d-cube of Elastic endpoints drives 256 KiB "+
			"epoch-pinned broadcast rounds with a gather ack; 40%% into the window rank 2^d — a rank the "+
			"founding cube cannot even address — joins with Dim=d+1. Survivors widen their link sets via "+
			"the GROW-attach handshake and the KindGrow flood, trees rebuild at the new dimension, and "+
			"in-flight rounds either complete on the old view or retry after the typed view-change error. "+
			"growth_ms = join request to the first round completed on the (d+1)-cube. goodput rates "+
			"bracket the event: pre = before the join, during = the fixed 250ms after it (the dip "+
			"window), post = the remainder at d+1; goodput_dip_pct = 1 - during/pre. goodput counts "+
			"payload*(live-1) per completed round. No process restarts. Single-vCPU container, best "+
			"(lowest growth_ms) of %d repetitions per row.", reps),
	}
	for d := 2; d <= maxD; d++ {
		var best *bench9Result
		for r := 0; r < reps; r++ {
			res, err := bench9Measure(d)
			if err != nil {
				return fmt.Errorf("bench9 d=%d: %w", d, err)
			}
			if best == nil || res.GrowthMillis < best.GrowthMillis {
				res := res
				best = &res
			}
		}
		out.Benchmarks = append(out.Benchmarks, *best)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func bench9Measure(d int) (bench9Result, error) {
	const (
		payloadM = 256 << 10
		window   = 1500 * time.Millisecond
		dipSpan  = 250 * time.Millisecond
	)
	N := 1 << uint(d)
	res := bench9Result{Name: "GrowOnline", Dim: d, PayloadBytes: payloadM}

	mk := func(dim int, id cube.NodeID, join bool) (*comm.Elastic, error) {
		return comm.NewElastic(comm.ElasticOptions{
			Dim: dim, Self: id, Join: join,
			Resilience: transport.ResilienceOptions{
				Enabled:     true,
				MaxAttempts: 4,
				Budget:      300 * time.Millisecond,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  30 * time.Millisecond,
			},
			HandshakeTimeout: 10 * time.Second,
		})
	}
	eps := make([]*comm.Elastic, N)
	addrs := make([]string, N)
	for i := range eps {
		e, err := mk(d, cube.NodeID(i), false)
		if err != nil {
			return res, err
		}
		defer e.Close()
		eps[i] = e
		addrs[i] = e.Addr()
	}
	cerrs := make(chan error, N)
	for _, e := range eps {
		go func(e *comm.Elastic) { cerrs <- e.Connect(addrs) }(e)
	}
	for range eps {
		if err := <-cerrs; err != nil {
			return res, err
		}
	}

	// Every root-side round completion lands here with its pinned
	// dimension; the timeline is post-processed into the pre/during/post
	// goodput brackets around the join instant.
	type completion struct {
		at    time.Time
		dim   int
		bytes int64
	}
	var (
		stop    atomic.Bool
		retries atomic.Int64

		mu      sync.Mutex
		events  []completion
		tJoin   time.Time
		grownAt time.Time
	)
	complete := func(dim int, liveBytes int64) {
		now := time.Now()
		mu.Lock()
		events = append(events, completion{now, dim, liveBytes})
		if dim > d && !tJoin.IsZero() && grownAt.IsZero() {
			grownAt = now
		}
		mu.Unlock()
	}

	template := make([]byte, payloadM)
	rootProg := func(s *comm.Session) error {
		payload := append([]byte(nil), template...)
		for round := uint32(0); ; round++ {
			vc, err := s.Pin()
			if err != nil {
				return err
			}
			stopping := stop.Load()
			if stopping {
				payload[0] = 1
			}
			binary.BigEndian.PutUint32(payload[1:5], round)
			if _, err := vc.Bcast(payload); err != nil {
				if isVCE(err) {
					retries.Add(1)
					round--
					continue
				}
				return err
			}
			if _, err := vc.Gather(nil); err != nil {
				if isVCE(err) {
					retries.Add(1)
					round--
					continue
				}
				return err
			}
			complete(vc.View().Dim, int64(payloadM)*int64(vc.View().LiveCount()-1))
			if stopping {
				return nil
			}
		}
	}
	followerProg := func(s *comm.Session) error {
		for {
			vc, err := s.Pin()
			if err != nil {
				return err
			}
			data, err := vc.Bcast(nil)
			if err != nil {
				if isVCE(err) {
					continue
				}
				return err
			}
			if len(data) != payloadM {
				return fmt.Errorf("rank %d: round payload %d bytes, want %d", vc.Rank(), len(data), payloadM)
			}
			stopping := data[0] == 1
			if _, err := vc.Gather(nil); err != nil {
				if isVCE(err) {
					continue
				}
				return err
			}
			if stopping {
				return nil
			}
		}
	}

	start := time.Now()
	perrs := make(chan error, N+1)
	running := 0
	launch := func(e *comm.Elastic, prog func(*comm.Session) error) {
		running++
		go func() { perrs <- e.Run(prog) }()
	}
	launch(eps[0], rootProg)
	for _, e := range eps[1:] {
		launch(e, followerProg)
	}

	// 40% in: rank 2^d joins, born at dim d+1, the rest of the grown
	// cube left as holes. Its only live neighbor is rank 0.
	time.Sleep(window * 4 / 10)
	joiner, err := mk(d+1, cube.NodeID(N), true)
	if err != nil {
		return res, err
	}
	defer joiner.Close()
	joinAddrs := make([]string, 2*N)
	copy(joinAddrs, addrs)
	mu.Lock()
	tJoin = time.Now()
	mu.Unlock()
	if err := joiner.Join(joinAddrs, 10*time.Second); err != nil {
		return res, fmt.Errorf("grow-join: %w", err)
	}
	launch(joiner, followerProg)
	time.Sleep(window * 6 / 10)

	stop.Store(true)
	wall := time.Since(start)
	for i := 0; i < running; i++ {
		select {
		case err := <-perrs:
			if err != nil {
				return res, err
			}
		case <-time.After(30 * time.Second):
			return res, errors.New("programs still running 30s after the stop round")
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if grownAt.IsZero() {
		return res, errors.New("no round ever completed on the grown cube")
	}
	res.WallSeconds = wall.Seconds()
	res.RoundsCompleted = int64(len(events))
	res.ViewRetries = retries.Load()
	res.GrowthMillis = float64(grownAt.Sub(tJoin).Microseconds()) / 1e3
	rate := func(from, to time.Time) float64 {
		span := to.Sub(from).Seconds()
		if span <= 0 {
			return 0
		}
		var b int64
		for _, ev := range events {
			if !ev.at.Before(from) && ev.at.Before(to) {
				b += ev.bytes
			}
		}
		return float64(b) / 1e6 / span
	}
	dipEnd := tJoin.Add(dipSpan)
	res.PreMBPerS = rate(start, tJoin)
	res.DuringMBPerS = rate(tJoin, dipEnd)
	res.PostMBPerS = rate(dipEnd, start.Add(wall))
	if res.PreMBPerS > 0 {
		res.GoodputDipPct = (1 - res.DuringMBPerS/res.PreMBPerS) * 100
	}
	fmt.Printf("Bench9GrowOnline/d=%d->%d %6.2fs growth=%.1fms  pre=%8.1f during=%8.1f post=%8.1f MB/s dip=%.1f%%  rounds=%d retries=%d\n",
		res.Dim, res.Dim+1, res.WallSeconds, res.GrowthMillis,
		res.PreMBPerS, res.DuringMBPerS, res.PostMBPerS, res.GoodputDipPct,
		res.RoundsCompleted, res.ViewRetries)
	return res, nil
}
