package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/comm"
	"repro/internal/sched"
)

// bench10Result is one BENCH_10 measurement: aggregate all-to-all
// goodput — every one of the 2^d ranks is a source at once — on one
// backend, with the contention-aware multi-source schedule on or off.
// agg_mb_per_s is job arithmetic over ALL sources' delivered payload
// (N·(N−1)·m bytes per round); mb_per_s is the transport's own
// delivered-payload counter on socket rows (relay hops included).
type bench10Result struct {
	Name          string `json:"name"`
	Transport     string `json:"transport"` // "inproc", "tcp" or "uds"
	Scheduled     bool   `json:"scheduled"`
	Dim           int    `json:"dim"`
	Rounds        int    `json:"rounds"`
	BytesPerRound int64  `json:"bytes_per_round"`

	SetupSeconds  float64 `json:"setup_s"`
	SteadySeconds float64 `json:"steady_s"`
	WallSeconds   float64 `json:"wall_s"`
	AggMBPerS     float64 `json:"agg_mb_per_s"`
	MBPerS        float64 `json:"mb_per_s"`

	// SchedSteps is the conflict-free plan's slot count on scheduled
	// rows (the Jung & Sakho-style lower bound the greedy packing hits).
	SchedSteps int `json:"sched_steps,omitempty"`
}

type bench10File struct {
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Note       string          `json:"note"`
	Benchmarks []bench10Result `json:"benchmarks"`
}

// runBench10 measures the contention-aware multi-source scheduler: a
// full all-to-all personalized exchange (every rank sources a
// translated BST simultaneously) with the per-step link-conflict-free
// schedule on vs the naive forward-on-arrival launch, on the
// in-process, loopback-TCP and Unix-domain-socket backends, d = 4..maxD.
func runBench10(path string, maxD int) error {
	const (
		rounds = 6
		pairM  = 512 // bytes per (source, destination) pair
		warmup = 2
		reps   = 3 // best-of, against single-vCPU scheduler noise
	)
	out := bench10File{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("contention-aware multi-source scheduling: full all-to-all personalized "+
			"exchange, %d bytes per (source,destination) pair, so one round moves N*(N-1)*%d "+
			"payload bytes across all 2^d concurrent sources; %d timed rounds per row after %d "+
			"warm-up rounds. scheduled=true walks sched.MultiSourcePlan's slot table (at most one "+
			"canonical edge per cube dimension per slot, so by XOR-translation symmetry no step "+
			"puts two transfers on one directed link; causal gating, no barriers). scheduled=false "+
			"is the naive forward-on-arrival launch of the same trees — same edges, tags and "+
			"bytes, different send order. agg_mb_per_s = N*(N-1)*%d*rounds over the steady "+
			"window (aggregate goodput, all sources summed); mb_per_s is the transport "+
			"PayloadDelivered counter on socket rows. In the idealized per-link-busy simulator "+
			"both orders reach the same makespan (the greedy executor serializes each link's "+
			"queue optimally); the schedule's measurable win on real transports is that nothing "+
			"queues — colliding sends otherwise contend for socket buffers and wire turns. "+
			"Single-vCPU container: each row keeps the best of %d repetitions, interleaved "+
			"across the transport x mode grid so compared rows sample the same host conditions.",
			pairM, pairM, rounds, warmup, pairM, reps),
	}
	for d := 4; d <= maxD; d++ {
		best := map[string]*bench10Result{}
		for r := 0; r < reps; r++ {
			for _, tr := range []string{"inproc", "tcp", "uds"} {
				for _, scheduled := range []bool{false, true} {
					res, err := bench10Measure(tr, d, rounds, warmup, pairM, scheduled)
					if err != nil {
						return err
					}
					key := fmt.Sprintf("%s/%v", tr, scheduled)
					if b, ok := best[key]; !ok || res.AggMBPerS > b.AggMBPerS {
						res := res
						best[key] = &res
					}
				}
			}
		}
		for _, tr := range []string{"inproc", "tcp", "uds"} {
			for _, scheduled := range []bool{false, true} {
				out.Benchmarks = append(out.Benchmarks, *best[fmt.Sprintf("%s/%v", tr, scheduled)])
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// allToAllJob runs `rounds` full personalized exchanges of m bytes per
// (source, destination) pair, verifying the stamped (source, dest)
// origin of every arriving packet. Outbound buffers are built and
// stamped once per rank and never mutated afterwards — payloads travel
// by reference on the in-process backend, so a per-round restamp would
// race with receivers still draining the previous round (the seq-tagged
// protocol already keeps rounds from cross-delivering).
func allToAllJob(rounds, m int) func(c *comm.Comm) error {
	return func(c *comm.Comm) error {
		N := c.Size()
		me := int(c.Rank())
		outbound := make([][]byte, N)
		for j := range outbound {
			outbound[j] = make([]byte, m)
			outbound[j][0], outbound[j][1] = byte(me), byte(j)
		}
		for r := 0; r < rounds; r++ {
			got, err := c.AllToAll(outbound)
			if err != nil {
				return fmt.Errorf("round %d: %w", r, err)
			}
			for i, pkt := range got {
				if len(pkt) != m || pkt[0] != byte(i) || pkt[1] != byte(me) {
					return fmt.Errorf("round %d: packet from %d corrupt (len %d, stamp %v)",
						r, i, len(pkt), pkt[:2])
				}
			}
		}
		return nil
	}
}

func bench10Measure(transport string, d, rounds, warmup, pairM int, scheduled bool) (bench10Result, error) {
	N := 1 << uint(d)
	bytesPerRound := int64(N) * int64(N-1) * int64(pairM)

	// The warm rounds also select the mode per rank: SetAllNodeSchedule
	// must run on the rank's own goroutine, and doing it here keeps the
	// inproc backend (which never sees TCPRunOptions) on the same path
	// as the socket ones, where RunTCPWith already applied NaiveAllNode.
	warm := func(c *comm.Comm) error {
		c.SetAllNodeSchedule(scheduled)
		return allToAllJob(warmup, pairM)(c)
	}
	job := allToAllJob(rounds, pairM)

	spec := meshSpec{transport: transport, dim: d, opt: comm.TCPRunOptions{NaiveAllNode: !scheduled}}
	m, err := measureMesh(spec, rounds, bytesPerRound, warm, job)
	if err != nil {
		return bench10Result{}, fmt.Errorf("bench10 %s sched=%v d=%d: %w", transport, scheduled, d, err)
	}
	res := bench10Result{
		Name: "AllToAll", Transport: transport, Scheduled: scheduled, Dim: d, Rounds: rounds,
		BytesPerRound: bytesPerRound,
		SetupSeconds:  m.SetupSeconds, SteadySeconds: m.SteadySeconds, WallSeconds: m.WallSeconds,
		AggMBPerS: m.CollectiveMBPerS, MBPerS: m.MBPerS,
	}
	if scheduled {
		res.SchedSteps = sched.MultiSourcePlan(d).Steps
	}
	if m.HaveStats && m.Stats.PayloadDelivered < bytesPerRound*int64(rounds) {
		return res, fmt.Errorf("bench10 %s sched=%v d=%d: transport observed %d delivered payload bytes, "+
			"claim needs at least %d", transport, scheduled, d, m.Stats.PayloadDelivered, bytesPerRound*int64(rounds))
	}
	fmt.Printf("Bench10AllToAll/%s/sched=%v/d=%d setup %7.3fs steady %7.3fs %10.1f agg-MB/s (steps=%d)\n",
		transport, scheduled, d, res.SetupSeconds, res.SteadySeconds, res.AggMBPerS, res.SchedSteps)
	return res, nil
}
