// Command tables regenerates the six tables of Ho & Johnsson (ICPP 1986).
//
// Usage:
//
//	tables              # print all tables
//	tables -table 5     # print one table
//	tables -n 7         # cube dimension for tables 1, 2, 4 (default 5)
//	tables -m 4096 -b 256 -tau 100 -tc 1   # cost parameters for tables 3, 6
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/exp"
	"repro/internal/model"
)

func main() {
	table := flag.Int("table", 0, "table number 1-6 (0 = all)")
	n := flag.Int("n", 5, "cube dimension for tables 1, 2, 4")
	m := flag.Float64("m", 4096, "elements per destination (tables 3, 6)")
	b := flag.Float64("b", 256, "maximum packet size in elements (table 3)")
	tau := flag.Float64("tau", 100, "start-up time")
	tc := flag.Float64("tc", 1, "transfer time per element")
	t5max := flag.Int("t5max", 20, "largest dimension for table 5")
	flag.Parse()

	p := model.Params{N: *n, M: *m, B: *b, Tau: *tau, Tc: *tc}
	run := func(id int, f func() error) {
		if *table != 0 && *table != id {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "table %d: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run(1, func() error { return table1(*n) })
	run(2, func() error { return table2(*n) })
	run(3, func() error { return table3(p) })
	run(4, func() error { return table4(*n) })
	run(5, func() error { table5(*t5max); return nil })
	run(6, func() error { return table6(p) })
}

func table1(n int) error {
	rows, err := exp.Table1(n)
	if err != nil {
		return err
	}
	fmt.Printf("Table 1: propagation delays (routing steps), n = %d\n", n)
	fmt.Printf("%-6s %-12s %10s %10s\n", "alg", "port model", "paper", "simulated")
	for _, r := range rows {
		fmt.Printf("%-6s %-12s %10d %10d\n", r.Alg, r.Port, r.Predicted, r.Simulated)
	}
	return nil
}

func table2(n int) error {
	rows, err := exp.Table2(n)
	if err != nil {
		return err
	}
	fmt.Printf("Table 2: cycles per distinct packet, n = %d\n", n)
	fmt.Printf("%-6s %-12s %10s %10s\n", "alg", "port model", "paper", "simulated")
	for _, r := range rows {
		fmt.Printf("%-6s %-12s %10.3f %10.3f\n", r.Alg, r.Port, r.Predicted, r.Simulated)
	}
	return nil
}

func table3(p model.Params) error {
	rows, err := exp.Table3(p)
	if err != nil {
		return err
	}
	fmt.Printf("Table 3: broadcast complexity at n=%d M=%.0f B=%.0f tau=%.0f tc=%.2f\n",
		p.N, p.M, p.B, p.Tau, p.Tc)
	fmt.Printf("%-6s %-12s %12s %12s %12s %12s\n", "alg", "port model", "T(B)", "B_opt", "T_min", "simulated")
	for _, r := range rows {
		simCol := "-"
		if !math.IsNaN(r.Simulated) {
			simCol = fmt.Sprintf("%.1f", r.Simulated)
		}
		fmt.Printf("%-6s %-12s %12.1f %12.1f %12.1f %12s\n", r.Alg, r.Port, r.T, r.Bopt, r.Tmin, simCol)
	}
	return nil
}

func table4(n int) error {
	rows, err := exp.Table4(n)
	if err != nil {
		return err
	}
	fmt.Printf("Table 4: broadcast complexity relative to MSBT, n = %d\n", n)
	fmt.Printf("%-6s %-12s %-26s %10s %10s\n", "alg", "port model", "regime", "paper", "simulated")
	for _, r := range rows {
		simCol := "-"
		if !math.IsNaN(r.Simulated) {
			simCol = fmt.Sprintf("%.2f", r.Simulated)
		}
		fmt.Printf("%-6s %-12s %-26s %10.2f %10s\n", r.Alg, r.Port, r.Regime, r.Predicted, simCol)
	}
	return nil
}

func table5(max int) {
	fmt.Println("Table 5: BST maximum subtree sizes vs (N-1)/log N")
	fmt.Printf("%3s %10s %12s %7s %10s %9s\n", "n", "BST(max)", "(N-1)/logN", "ratio", "BST(min)", "cyclics")
	for _, r := range exp.Table5(2, max) {
		fmt.Printf("%3d %10d %12.2f %7.2f %10d %9d\n", r.N, r.BSTMax, r.Ideal, r.Ratio, r.BSTMin, r.Cyclics)
	}
}

func table6(p model.Params) error {
	rows, err := exp.Table6(p)
	if err != nil {
		return err
	}
	fmt.Printf("Table 6: personalized communication at n=%d M=%.0f tau=%.0f tc=%.2f\n",
		p.N, p.M, p.Tau, p.Tc)
	fmt.Printf("%-6s %-12s %12s %12s\n", "alg", "port model", "T_min", "simulated")
	for _, r := range rows {
		simCol := "-"
		if !math.IsNaN(r.Simulated) {
			simCol = fmt.Sprintf("%.1f", r.Simulated)
		}
		fmt.Printf("%-6s %-12s %12.1f %12s\n", r.Alg, r.Port, r.Tmin, simCol)
	}
	return nil
}
