// Command figures regenerates the measurement figures of Ho & Johnsson
// (ICPP 1986) on the simulated iPSC-like machine: Figure 5 (SBT broadcast
// vs packet size), Figure 6 (SBT vs MSBT broadcast), Figure 7 (MSBT/SBT
// speedup) and Figure 8 (SBT vs BST personalized communication). Series
// are printed as aligned columns and, with -chart, as ASCII plots.
//
// Usage:
//
//	figures                # all figures
//	figures -fig 7         # one figure
//	figures -chart         # also render ASCII charts
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bst"
	"repro/internal/exp"
	"repro/internal/msbt"
	"repro/internal/sbt"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/vis"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-8 (0 = all; 1-4 are structure diagrams)")
	chart := flag.Bool("chart", false, "render ASCII charts")
	dot := flag.Bool("dot", false, "emit Graphviz DOT for figures 1-4 instead of ASCII trees")
	maxDim := flag.Int("maxdim", 7, "largest cube dimension")
	flag.Parse()

	type job struct {
		id int
		f  func(io.Writer) error
	}
	all := []job{
		{1, func(w io.Writer) error { return figure1(w, *dot) }},
		{2, func(w io.Writer) error { return figure2(w, *dot) }},
		{3, func(w io.Writer) error { return figure3(w, *dot) }},
		{4, func(w io.Writer) error { return figure4(w, *dot) }},
		{5, func(w io.Writer) error { return figure5(w, *chart, *maxDim) }},
		{6, func(w io.Writer) error { return figure6(w, *chart, *maxDim) }},
		{7, func(w io.Writer) error { return figure7(w, *chart, *maxDim) }},
		{8, func(w io.Writer) error { return figure8(w, *chart, *maxDim) }},
	}
	var jobs []job
	for _, j := range all {
		if *fig == 0 || *fig == j.id {
			jobs = append(jobs, j)
		}
	}
	// Each figure renders into its own buffer on the exp worker pool (the
	// measurement figures are independent simulation sweeps); output is
	// printed in figure order.
	bufs, err := exp.Parallel(jobs, 0, func(j job) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := j.f(&b); err != nil {
			return nil, fmt.Errorf("figure %d: %w", j.id, err)
		}
		return &b, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, b := range bufs {
		os.Stdout.Write(b.Bytes())
		fmt.Println()
	}
}

func figure1(w io.Writer, dot bool) error {
	fmt.Fprintln(w, "Figure 1: the spanning binomial tree in a 4-cube (root 0000)")
	t, err := sbt.New(4, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, vis.DOT("sbt4", []*tree.Tree{t}, nil))
	} else {
		fmt.Fprint(w, vis.ASCIITree(t, nil))
	}
	return nil
}

func figure2(w io.Writer, dot bool) error {
	fmt.Fprintln(w, "Figure 2: three edge-disjoint directed spanning trees (ERSBTs) in a 3-cube")
	trees, err := msbt.Trees(3, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, vis.DOT("msbt3", trees, nil))
		return nil
	}
	for j, t := range trees {
		fmt.Fprintf(w, "-- ERSBT %d --\n%s", j, vis.ASCIITree(t, nil))
	}
	return nil
}

func figure3(w io.Writer, dot bool) error {
	fmt.Fprintln(w, "Figure 3: MSBT routing in a 3-cube, edges labelled by the cycle function f")
	trees, err := msbt.Trees(3, 0)
	if err != nil {
		return err
	}
	labelers := make([]vis.EdgeLabeler, len(trees))
	for j := range trees {
		labelers[j] = vis.MSBTLabeler(3, j, 0)
	}
	if dot {
		fmt.Fprint(w, vis.DOT("msbt3f", trees, labelers))
		return nil
	}
	for j, t := range trees {
		fmt.Fprintf(w, "-- ERSBT %d (input-edge cycle in brackets) --\n%s", j, vis.ASCIITree(t, labelers[j]))
	}
	return nil
}

func figure4(w io.Writer, dot bool) error {
	fmt.Fprintln(w, "Figure 4: the balanced spanning tree in a 5-cube (root 00000)")
	t, err := bst.New(5, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, vis.DOT("bst5", []*tree.Tree{t}, nil))
	} else {
		fmt.Fprint(w, vis.ASCIITree(t, nil))
		fmt.Fprintln(w)
		fmt.Fprint(w, vis.SubtreeSummary(t))
	}
	return nil
}

func dimsTo(max int) []int {
	var out []int
	for n := 2; n <= max; n++ {
		out = append(out, n)
	}
	return out
}

func figure5(w io.Writer, chart bool, maxDim int) error {
	fmt.Fprintln(w, "Figure 5: SBT broadcast time (ms) vs external packet size (bytes), M = 60 KB")
	sizes := []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	series, err := exp.Figure5(dimsTo(maxDim), 60*1024, sizes)
	if err != nil {
		return err
	}
	if err := trace.Table(w, "B", series...); err != nil {
		return err
	}
	if chart {
		fmt.Fprint(w, trace.Chart(series, 64, 16))
	}
	return nil
}

func figure6(w io.Writer, chart bool, maxDim int) error {
	fmt.Fprintln(w, "Figure 6: broadcast time (ms) of 60 KB in 1 KB packets vs cube dimension")
	sbtS, msbtS, err := exp.Figure6(dimsTo(maxDim))
	if err != nil {
		return err
	}
	if err := trace.Table(w, "d", sbtS, msbtS); err != nil {
		return err
	}
	if chart {
		fmt.Fprint(w, trace.Chart([]trace.Series{sbtS, msbtS}, 48, 14))
	}
	return nil
}

func figure7(w io.Writer, chart bool, maxDim int) error {
	fmt.Fprintln(w, "Figure 7: speedup of MSBT- over SBT-based broadcasting (expected ~ log N)")
	s, err := exp.Figure7(dimsTo(maxDim))
	if err != nil {
		return err
	}
	if err := trace.Table(w, "d", s); err != nil {
		return err
	}
	if chart {
		fmt.Fprint(w, trace.Chart([]trace.Series{s}, 48, 12))
	}
	return nil
}

func figure8(w io.Writer, chart bool, maxDim int) error {
	fmt.Fprintln(w, "Figure 8: personalized communication time (ms), 1 KB per node, one-port with 20% overlap")
	sbtS, bstS, err := exp.Figure8(dimsTo(maxDim), 1024)
	if err != nil {
		return err
	}
	if err := trace.Table(w, "d", sbtS, bstS); err != nil {
		return err
	}
	if chart {
		fmt.Fprint(w, trace.Chart([]trace.Series{sbtS, bstS}, 48, 14))
	}
	return nil
}
