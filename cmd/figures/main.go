// Command figures regenerates the measurement figures of Ho & Johnsson
// (ICPP 1986) on the simulated iPSC-like machine: Figure 5 (SBT broadcast
// vs packet size), Figure 6 (SBT vs MSBT broadcast), Figure 7 (MSBT/SBT
// speedup) and Figure 8 (SBT vs BST personalized communication). Series
// are printed as aligned columns and, with -chart, as ASCII plots.
//
// Usage:
//
//	figures                # all figures
//	figures -fig 7         # one figure
//	figures -chart         # also render ASCII charts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bst"
	"repro/internal/exp"
	"repro/internal/msbt"
	"repro/internal/sbt"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/vis"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-8 (0 = all; 1-4 are structure diagrams)")
	chart := flag.Bool("chart", false, "render ASCII charts")
	dot := flag.Bool("dot", false, "emit Graphviz DOT for figures 1-4 instead of ASCII trees")
	maxDim := flag.Int("maxdim", 7, "largest cube dimension")
	flag.Parse()

	run := func(id int, f func() error) {
		if *fig != 0 && *fig != id {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %d: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	run(1, func() error { return figure1(*dot) })
	run(2, func() error { return figure2(*dot) })
	run(3, func() error { return figure3(*dot) })
	run(4, func() error { return figure4(*dot) })
	run(5, func() error { return figure5(*chart, *maxDim) })
	run(6, func() error { return figure6(*chart, *maxDim) })
	run(7, func() error { return figure7(*chart, *maxDim) })
	run(8, func() error { return figure8(*chart, *maxDim) })
}

func figure1(dot bool) error {
	fmt.Println("Figure 1: the spanning binomial tree in a 4-cube (root 0000)")
	t, err := sbt.New(4, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(vis.DOT("sbt4", []*tree.Tree{t}, nil))
	} else {
		fmt.Print(vis.ASCIITree(t, nil))
	}
	return nil
}

func figure2(dot bool) error {
	fmt.Println("Figure 2: three edge-disjoint directed spanning trees (ERSBTs) in a 3-cube")
	trees, err := msbt.Trees(3, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(vis.DOT("msbt3", trees, nil))
		return nil
	}
	for j, t := range trees {
		fmt.Printf("-- ERSBT %d --\n%s", j, vis.ASCIITree(t, nil))
	}
	return nil
}

func figure3(dot bool) error {
	fmt.Println("Figure 3: MSBT routing in a 3-cube, edges labelled by the cycle function f")
	trees, err := msbt.Trees(3, 0)
	if err != nil {
		return err
	}
	labelers := make([]vis.EdgeLabeler, len(trees))
	for j := range trees {
		labelers[j] = vis.MSBTLabeler(3, j, 0)
	}
	if dot {
		fmt.Print(vis.DOT("msbt3f", trees, labelers))
		return nil
	}
	for j, t := range trees {
		fmt.Printf("-- ERSBT %d (input-edge cycle in brackets) --\n%s", j, vis.ASCIITree(t, labelers[j]))
	}
	return nil
}

func figure4(dot bool) error {
	fmt.Println("Figure 4: the balanced spanning tree in a 5-cube (root 00000)")
	t, err := bst.New(5, 0)
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(vis.DOT("bst5", []*tree.Tree{t}, nil))
	} else {
		fmt.Print(vis.ASCIITree(t, nil))
		fmt.Println()
		fmt.Print(vis.SubtreeSummary(t))
	}
	return nil
}

func dimsTo(max int) []int {
	var out []int
	for n := 2; n <= max; n++ {
		out = append(out, n)
	}
	return out
}

func figure5(chart bool, maxDim int) error {
	fmt.Println("Figure 5: SBT broadcast time (ms) vs external packet size (bytes), M = 60 KB")
	sizes := []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	series, err := exp.Figure5(dimsTo(maxDim), 60*1024, sizes)
	if err != nil {
		return err
	}
	if err := trace.Table(os.Stdout, "B", series...); err != nil {
		return err
	}
	if chart {
		fmt.Print(trace.Chart(series, 64, 16))
	}
	return nil
}

func figure6(chart bool, maxDim int) error {
	fmt.Println("Figure 6: broadcast time (ms) of 60 KB in 1 KB packets vs cube dimension")
	sbtS, msbtS, err := exp.Figure6(dimsTo(maxDim))
	if err != nil {
		return err
	}
	if err := trace.Table(os.Stdout, "d", sbtS, msbtS); err != nil {
		return err
	}
	if chart {
		fmt.Print(trace.Chart([]trace.Series{sbtS, msbtS}, 48, 14))
	}
	return nil
}

func figure7(chart bool, maxDim int) error {
	fmt.Println("Figure 7: speedup of MSBT- over SBT-based broadcasting (expected ~ log N)")
	s, err := exp.Figure7(dimsTo(maxDim))
	if err != nil {
		return err
	}
	if err := trace.Table(os.Stdout, "d", s); err != nil {
		return err
	}
	if chart {
		fmt.Print(trace.Chart([]trace.Series{s}, 48, 12))
	}
	return nil
}

func figure8(chart bool, maxDim int) error {
	fmt.Println("Figure 8: personalized communication time (ms), 1 KB per node, one-port with 20% overlap")
	sbtS, bstS, err := exp.Figure8(dimsTo(maxDim), 1024)
	if err != nil {
		return err
	}
	if err := trace.Table(os.Stdout, "d", sbtS, bstS); err != nil {
		return err
	}
	if chart {
		fmt.Print(trace.Chart([]trace.Series{sbtS, bstS}, 48, 14))
	}
	return nil
}
