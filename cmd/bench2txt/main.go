// Command bench2txt converts a BENCH_2.json record (written by
// `experiments -bench`) into Go benchmark text format so benchstat can
// compare two records:
//
//	bench2txt old/BENCH_2.json > old.txt
//	bench2txt BENCH_2.json > new.txt
//	benchstat old.txt new.txt
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench2txt BENCH_2.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2txt:", err)
		os.Exit(1)
	}
	var rec struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			Iterations  int     `json:"iterations"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintln(os.Stderr, "bench2txt:", err)
		os.Exit(1)
	}
	for _, b := range rec.Benchmarks {
		fmt.Printf("Benchmark%s %d %.0f ns/op %.0f allocs/op\n",
			b.Name, b.Iterations, b.NsPerOp, b.AllocsPerOp)
	}
}
