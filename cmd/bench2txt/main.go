// Command bench2txt converts a benchmark JSON record (BENCH_2.json
// written by `experiments -bench`, or BENCH_3.json / BENCH_5.json
// written by `experiments -bench3` / `-bench5`) into Go benchmark text
// format so benchstat can compare two records:
//
//	bench2txt old/BENCH_5.json > old.txt
//	bench2txt BENCH_5.json > new.txt
//	benchstat old.txt new.txt
//
// The schema is detected per entry: micro-benchmark entries carry
// ns_per_op/allocs_per_op, throughput entries carry mb_per_s (emitted
// as a MB/s metric with the steady-state wall time as ns/op, keyed
// Benchmark<Name>/<transport>/d=<dim> so benchstat lines up transports
// and dimensions across records), and service-load entries (BENCH_6,
// written by `experiments -bench6`) carry jobs_per_s plus latency
// percentiles, emitted as jobs/s, p50-ms and p99-ms metrics.
// Self-tuning data-plane entries (BENCH_7, written by `experiments
// -bench7`) are throughput entries that additionally carry an autotune
// flag; it becomes an /auto=on|off axis in the key so benchstat lines
// up the tuned and untuned rows of each transport × dimension.
// Elastic-membership entries (BENCH_8, written by `experiments
// -bench8`) carry a mode ("clean" or "churn") that becomes the key's
// axis, goodput as MB/s, and — on the churn rows — the elasticity
// latencies as detect-ms / repair-ms / join-ms metrics. Online-growth
// entries (BENCH_9, written by `experiments -bench9`) carry the growth
// latency as growth-ms plus the goodput rates bracketing the event as
// pre-/during-/post-MB/s. Multi-source scheduling entries (BENCH_10,
// written by `experiments -bench10`) carry agg_mb_per_s — aggregate
// all-to-all goodput summed over all 2^d concurrent sources — plus a
// scheduled flag that becomes a /sched=on|off axis, so benchstat lines
// up the conflict-free schedule against the naive launch per
// transport × dimension.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type entry struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsPer  float64 `json:"allocs_per_op"`

	Transport     string  `json:"transport"`
	Dim           int     `json:"dim"`
	MBPerS        float64 `json:"mb_per_s"`
	SteadySeconds float64 `json:"steady_s"`
	WallSeconds   float64 `json:"wall_s"`
	// Autotune distinguishes BENCH_7 rows; a pointer, because absence
	// (BENCH_3/BENCH_5) and "off" must key differently.
	Autotune *bool `json:"autotune"`

	JobsPerS float64 `json:"jobs_per_s"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`

	// Mode distinguishes BENCH_8 rows ("clean" or "churn").
	Mode         string  `json:"mode"`
	DetectMillis float64 `json:"detect_ms"`
	RepairMillis float64 `json:"repair_ms"`
	JoinMillis   float64 `json:"join_admit_ms"`

	// GrowthMillis distinguishes BENCH_9 rows (online mesh growth):
	// the growth latency plus the goodput rates bracketing the event.
	GrowthMillis float64 `json:"growth_ms"`
	PreMBPerS    float64 `json:"pre_mb_per_s"`
	DuringMBPerS float64 `json:"during_mb_per_s"`
	PostMBPerS   float64 `json:"post_mb_per_s"`

	// Scheduled + AggMBPerS distinguish BENCH_10 rows (multi-source
	// scheduling); a pointer like Autotune, because absence and "off"
	// must key differently.
	Scheduled *bool   `json:"scheduled"`
	AggMBPerS float64 `json:"agg_mb_per_s"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench2txt BENCH.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2txt:", err)
		os.Exit(1)
	}
	var rec struct {
		Benchmarks []entry `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintln(os.Stderr, "bench2txt:", err)
		os.Exit(1)
	}
	for _, b := range rec.Benchmarks {
		if b.GrowthMillis > 0 {
			fmt.Printf("Benchmark%s/d=%d 1 %.0f ns/op %.3f growth-ms %.2f pre-MB/s %.2f during-MB/s %.2f post-MB/s\n",
				b.Name, b.Dim, b.WallSeconds*1e9, b.GrowthMillis,
				b.PreMBPerS, b.DuringMBPerS, b.PostMBPerS)
			continue
		}
		if b.Mode != "" {
			line := fmt.Sprintf("Benchmark%s/%s/d=%d 1 %.0f ns/op %.2f MB/s",
				b.Name, b.Mode, b.Dim, b.WallSeconds*1e9, b.MBPerS)
			if b.Mode == "churn" {
				line += fmt.Sprintf(" %.3f detect-ms %.3f repair-ms %.3f join-ms",
					b.DetectMillis, b.RepairMillis, b.JoinMillis)
			}
			fmt.Println(line)
			continue
		}
		if b.Scheduled != nil {
			axis := "/sched=off"
			if *b.Scheduled {
				axis = "/sched=on"
			}
			wall := b.SteadySeconds
			if wall <= 0 {
				wall = b.WallSeconds
			}
			fmt.Printf("Benchmark%s/%s%s/d=%d 1 %.0f ns/op %.2f agg-MB/s %.2f MB/s\n",
				b.Name, b.Transport, axis, b.Dim, wall*1e9, b.AggMBPerS, b.MBPerS)
			continue
		}
		if b.JobsPerS > 0 {
			fmt.Printf("Benchmark%s/%s/d=%d 1 %.0f ns/op %.1f jobs/s %.3f p50-ms %.3f p99-ms\n",
				b.Name, b.Transport, b.Dim, b.WallSeconds*1e9, b.JobsPerS, b.P50Ms, b.P99Ms)
			continue
		}
		if b.MBPerS > 0 {
			wall := b.SteadySeconds
			if wall <= 0 {
				wall = b.WallSeconds
			}
			axis := ""
			if b.Autotune != nil {
				axis = "/auto=off"
				if *b.Autotune {
					axis = "/auto=on"
				}
			}
			fmt.Printf("Benchmark%s/%s%s/d=%d 1 %.0f ns/op %.2f MB/s\n",
				b.Name, b.Transport, axis, b.Dim, wall*1e9, b.MBPerS)
			continue
		}
		fmt.Printf("Benchmark%s %d %.0f ns/op %.0f allocs/op\n",
			b.Name, b.Iterations, b.NsPerOp, b.AllocsPer)
	}
}
